//! `elmo-eval` — regenerate every table and figure of the Elmo paper.
//!
//! ```text
//! elmo-eval <experiment> [flags]
//!
//! experiments:
//!   fig4            coverage / s-rules / traffic vs R, clustered placement (P=12)
//!   fig5            same, dispersed placement (P=1)
//!   uniform         §5.1.2: Uniform group-size distribution, both placements
//!   limited-srules  §5.1.2: Fmax = 10,000, dispersed placement
//!   small-header    §5.1.2: ~125-byte header budget + Fmax = 10,000
//!   table1          summary of headline results
//!   table2          control-plane update load under churn
//!   table3          related-work comparison
//!   fig6            pub-sub throughput and publisher CPU vs subscribers
//!   fig7            hypervisor encap throughput vs p-rule count
//!   telemetry       §5.2.2: sFlow egress bandwidth vs collectors
//!   failures        §5.1.3b: spine/core failure impact
//!   latency         §5.1.3: controller rule-computation latency
//!   xpander         §5.1.2: non-Clos (Xpander) feasibility
//!   ablation        §3.1 design-decision ablation (D1 -> D2 -> D3)
//!   two-tier        §5.1.1: two-tier (CONGA-style) leaf-spine sanity check
//!   verify          static rule-state verification of the fig4/fig5 state
//!   churn           §5.1.3a delta vs full re-encode under a seeded join/leave
//!                   stream, with per-burst verification (--events, --burst,
//!                   --delta on|off, --expect-hit-rate PCT)
//!   trace           causal copy-tree trace of one packet (--group, --sender)
//!   timeline        windowed failure replay emitting per-window metrics
//!   all             run everything
//!
//! flags:
//!   --full          paper-scale fabric (27,648 hosts) and workload (1M groups)
//!   --groups N      override the group count
//!   --tenants N     override the tenant count
//!   --events N      churn events for table2 (default 20,000; paper 1M)
//!   --pkt N         extra payload size for the traffic columns
//!   --r LIST        comma-separated redundancy limits (default 0,2,4,6,8,10,12)
//!   --seed N        workload seed
//!   --threads N     encode worker threads (0 = all cores; results are
//!                   identical at any thread count, only wall-clock changes)
//!   --samples N     groups replayed in verify's differential mode (default 120)
//!   --replay-threads N  data-plane replay shard count for verify's
//!                   differential mode and the fig6/telemetry/SMR app
//!                   fabrics (default: verify samples one from the seed,
//!                   clamped to the available cores; apps stay serial;
//!                   results are identical either way)
//!   --replay-allow-oversubscribed  let verify's seed-derived shard count
//!                   exceed the available cores; the report marks
//!                   `replay_shards.oversubscribed` either way
//!   --report-out P  write verify's JSON report to P
//!   --group N       fixture group id for `trace` (1..=3, default 3)
//!   --sender H      sender host for `trace` (default: group's first member)
//!   --trace-out P   write the traced copy tree (JSON) to P
//!   --expect-nodes N  fail `trace` unless the tree has exactly N nodes
//!   --windows N     logical windows for `timeline` (default 12)
//!   --tick N        packets replayed per window (default 8)
//!   --timeline-out P  write `timeline`'s per-window JSONL to P
//!   --metrics-out P write an elmo-obs metrics snapshot (JSON) to P on exit
//!   --trace-pcap P  dump a bounded sample of simulated packets to P (pcap)
//!   -v / -vv        debug / trace logging on stderr
//!   --quiet         warnings and errors only
//!   --log-json      JSONL structured events on stderr instead of human text
//! ```
//!
//! `elmo-eval check-metrics <file>` validates a snapshot written with
//! `--metrics-out` against the declared-metric contract
//! ([`elmo_sim::obs::REQUIRED_METRICS`]); exit 1 if invalid.
//!
//! `elmo-eval verify` compiles the Figure-4 (P=12) and Figure-5 (P=1)
//! workloads, installs every rule into a simulated fabric, and runs the
//! `elmo-verify` static checker plus its differential replay mode; exit 1
//! if any violation is found. See `elmo_sim::verify_exp`.
//!
//! Without `--full` a proportionally scaled fabric is used so every
//! experiment completes in seconds; shapes (who wins, where the knees are)
//! are preserved. EXPERIMENTS.md records paper-vs-measured numbers.
#![forbid(unsafe_code)]

use elmo_sim::report::{avg_max, count, pct, ratio, table};
use elmo_sim::{sweep, SweepConfig};
use elmo_topology::Clos;
use elmo_workloads::{GroupSizeDist, WorkloadConfig};

#[derive(Clone, Debug)]
struct Opts {
    experiment: String,
    full: bool,
    groups: Option<usize>,
    tenants: Option<usize>,
    events: usize,
    extra_payload: Option<u64>,
    r_values: Vec<usize>,
    seed: u64,
    threads: usize,
    metrics_out: Option<String>,
    trace_pcap: Option<String>,
    check_file: Option<String>,
    samples: usize,
    report_out: Option<String>,
    replay_threads: Option<usize>,
    replay_allow_oversubscribed: bool,
    group: u64,
    sender: Option<u32>,
    trace_out: Option<String>,
    expect_nodes: Option<usize>,
    windows: usize,
    tick: usize,
    timeline_out: Option<String>,
    burst: usize,
    delta: bool,
    expect_hit_rate: Option<u64>,
    min_group: Option<usize>,
    temporal_events: usize,
    temporal_senders: usize,
    expect_min_schedules: Option<u64>,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts {
        experiment: String::new(),
        full: false,
        groups: None,
        tenants: None,
        events: 20_000,
        extra_payload: None,
        r_values: vec![0, 2, 4, 6, 8, 10, 12],
        seed: 0xe1_40,
        threads: 0,
        metrics_out: None,
        trace_pcap: None,
        check_file: None,
        samples: 120,
        report_out: None,
        replay_threads: None,
        replay_allow_oversubscribed: false,
        group: 3,
        sender: None,
        trace_out: None,
        expect_nodes: None,
        windows: 12,
        tick: 8,
        timeline_out: None,
        burst: 5_000,
        delta: true,
        expect_hit_rate: None,
        min_group: None,
        temporal_events: 10_000,
        temporal_senders: 2,
        expect_min_schedules: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => opts.full = true,
            "--metrics-out" => {
                opts.metrics_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--metrics-out needs a path")),
                );
            }
            "--trace-pcap" => {
                opts.trace_pcap = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-pcap needs a path")),
                );
            }
            "-v" => elmo_obs::set_level(elmo_obs::Level::Debug),
            "-vv" => elmo_obs::set_level(elmo_obs::Level::Trace),
            "--quiet" | "-q" => elmo_obs::set_level(elmo_obs::Level::Warn),
            "--log-json" => elmo_obs::set_format(elmo_obs::Format::Jsonl),
            "--groups" => opts.groups = Some(expect_num(&mut args, "--groups") as usize),
            "--tenants" => opts.tenants = Some(expect_num(&mut args, "--tenants") as usize),
            "--events" => opts.events = expect_num(&mut args, "--events") as usize,
            "--pkt" => opts.extra_payload = Some(expect_num(&mut args, "--pkt")),
            "--seed" => opts.seed = expect_num(&mut args, "--seed"),
            "--threads" => opts.threads = expect_num(&mut args, "--threads") as usize,
            "--samples" => opts.samples = expect_num(&mut args, "--samples") as usize,
            "--replay-threads" => {
                opts.replay_threads = Some(expect_num(&mut args, "--replay-threads") as usize);
            }
            "--replay-allow-oversubscribed" => opts.replay_allow_oversubscribed = true,
            "--report-out" => {
                opts.report_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--report-out needs a path")),
                );
            }
            "--group" => opts.group = expect_num(&mut args, "--group"),
            "--sender" => opts.sender = Some(expect_num(&mut args, "--sender") as u32),
            "--trace-out" => {
                opts.trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a path")),
                );
            }
            "--expect-nodes" => {
                opts.expect_nodes = Some(expect_num(&mut args, "--expect-nodes") as usize);
            }
            "--burst" => opts.burst = expect_num(&mut args, "--burst") as usize,
            "--delta" => {
                opts.delta = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => usage("--delta needs on|off"),
                }
            }
            "--expect-hit-rate" => {
                opts.expect_hit_rate = Some(expect_num(&mut args, "--expect-hit-rate"));
            }
            "--min-group" => opts.min_group = Some(expect_num(&mut args, "--min-group") as usize),
            "--temporal-events" => {
                opts.temporal_events = expect_num(&mut args, "--temporal-events") as usize;
            }
            "--temporal-senders" => {
                opts.temporal_senders = expect_num(&mut args, "--temporal-senders") as usize;
            }
            "--expect-min-schedules" => {
                opts.expect_min_schedules = Some(expect_num(&mut args, "--expect-min-schedules"));
            }
            "--windows" => opts.windows = expect_num(&mut args, "--windows") as usize,
            "--tick" => opts.tick = expect_num(&mut args, "--tick") as usize,
            "--timeline-out" => {
                opts.timeline_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--timeline-out needs a path")),
                );
            }
            "--r" => {
                let list = args.next().unwrap_or_else(|| usage("--r needs a list"));
                opts.r_values = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad --r value")))
                    .collect();
            }
            "--help" | "-h" => usage(""),
            other if opts.experiment.is_empty() && !other.starts_with('-') => {
                opts.experiment = other.to_string();
            }
            other
                if opts.experiment == "check-metrics"
                    && opts.check_file.is_none()
                    && !other.starts_with('-') =>
            {
                opts.check_file = Some(other.to_string());
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if opts.experiment.is_empty() {
        usage("missing experiment name");
    }
    opts
}

fn expect_num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        elmo_obs::error!("usage", msg = msg);
    }
    eprintln!(
        "usage: elmo-eval <fig4|fig5|uniform|limited-srules|small-header|table1|table2|table3|\
         fig6|fig7|telemetry|failures|latency|xpander|verify|churn|race|trace|timeline|all> [--full] \
         [--groups N] \
         [--tenants N] [--events N] [--pkt N] [--r 0,6,12] [--seed N] [--threads N] \
         [--samples N] [--replay-threads N] [--replay-allow-oversubscribed] \
         [--report-out PATH] [--metrics-out PATH] \
         [--trace-pcap PATH] \
         [--group N] [--sender H] [--trace-out PATH] [--expect-nodes N] \
         [--burst N] [--delta on|off] [--expect-hit-rate PCT] \
         [--temporal-events N] [--temporal-senders N] [--expect-min-schedules N] \
         [--windows N] [--tick N] [--timeline-out PATH] \
         [-v|-vv|--quiet] [--log-json]\n\
         \n       elmo-eval check-metrics <snapshot.json>"
    );
    std::process::exit(2);
}

fn fabric(opts: &Opts) -> Clos {
    if opts.full {
        Clos::facebook_fabric()
    } else {
        // 2,304 hosts: the same shape at 1/12 the size, with pods still
        // large enough to hold a mean-sized tenant under P = 12 (the paper's
        // placement is pod-sticky, so pod capacity shapes everything).
        Clos::scaled_fabric(6, 24, 16)
    }
}

fn workload_cfg(opts: &Opts, topo: &Clos, p: usize, dist: GroupSizeDist) -> WorkloadConfig {
    let mut cfg = if opts.full {
        WorkloadConfig::paper(p, dist)
    } else {
        WorkloadConfig::scaled(topo, p, dist)
    };
    if let Some(g) = opts.groups {
        cfg.total_groups = g;
    }
    if let Some(t) = opts.tenants {
        cfg.tenants = t;
    }
    cfg.seed = opts.seed;
    cfg
}

fn main() {
    let opts = parse_args();
    if opts.experiment == "check-metrics" {
        run_check_metrics(&opts);
        return;
    }
    if opts.experiment == "all" {
        for exp in [
            "fig4",
            "fig5",
            "uniform",
            "limited-srules",
            "small-header",
            "table2",
            "table3",
            "fig6",
            "fig7",
            "telemetry",
            "failures",
            "latency",
            "xpander",
            "ablation",
            "two-tier",
            "verify",
            "trace",
            "timeline",
            "churn",
            "race",
            "table1",
        ] {
            let mut o = opts.clone();
            o.experiment = exp.into();
            println!("\n================ {exp} ================\n");
            run_one(&o);
        }
    } else {
        run_one(&opts);
    }
    if let Some(path) = &opts.trace_pcap {
        match elmo_sim::obs::write_trace_pcap(path, 256) {
            Ok(n) => elmo_obs::info!("trace_pcap.written", path = path.as_str(), packets = n),
            Err(e) => {
                elmo_obs::error!(
                    "trace_pcap.failed",
                    path = path.as_str(),
                    error = e.to_string()
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &opts.metrics_out {
        match elmo_sim::obs::write_snapshot(path) {
            Ok(()) => elmo_obs::info!("metrics.written", path = path.as_str()),
            Err(e) => {
                elmo_obs::error!(
                    "metrics.write_failed",
                    path = path.as_str(),
                    error = e.to_string()
                );
                std::process::exit(1);
            }
        }
    }
}

/// `elmo-eval check-metrics <file>` — validate a `--metrics-out` snapshot
/// against the declared-metric contract. Exit 0 if valid, 1 if not.
fn run_check_metrics(opts: &Opts) {
    let path = opts
        .check_file
        .as_deref()
        .unwrap_or_else(|| usage("check-metrics needs a snapshot file"));
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        elmo_obs::error!(
            "check_metrics.unreadable",
            path = path,
            error = e.to_string()
        );
        std::process::exit(1);
    });
    let problems = elmo_sim::obs::check_snapshot(&json);
    if problems.is_empty() {
        elmo_obs::info!("check_metrics.ok", path = path);
        println!("ok: {path} contains every declared metric");
    } else {
        for p in &problems {
            elmo_obs::error!("check_metrics.problem", path = path, problem = p.as_str());
        }
        std::process::exit(1);
    }
}

fn run_one(opts: &Opts) {
    match opts.experiment.as_str() {
        "fig4" => run_sweep(opts, 12, GroupSizeDist::Wve, usize::MAX, 30, "Figure 4"),
        "fig5" => run_sweep(opts, 1, GroupSizeDist::Wve, usize::MAX, 30, "Figure 5"),
        "uniform" => {
            run_sweep(
                opts,
                12,
                GroupSizeDist::Uniform,
                usize::MAX,
                30,
                "Uniform sizes, P=12",
            );
            run_sweep(
                opts,
                1,
                GroupSizeDist::Uniform,
                usize::MAX,
                30,
                "Uniform sizes, P=1",
            );
        }
        "limited-srules" => {
            let fmax = scaled_fmax(opts);
            run_sweep(
                opts,
                1,
                GroupSizeDist::Wve,
                fmax,
                30,
                "Fmax-limited, WVE, P=1",
            );
            run_sweep(
                opts,
                1,
                GroupSizeDist::Uniform,
                fmax,
                30,
                "Fmax-limited, Uniform, P=1",
            );
        }
        "small-header" => {
            let fmax = scaled_fmax(opts);
            run_sweep(
                opts,
                1,
                GroupSizeDist::Wve,
                fmax,
                10,
                "10-leaf-rule (~125B) header, WVE, P=1",
            );
        }
        "table2" => run_table2(opts),
        "table3" => run_table3(),
        "fig6" => run_fig6(opts),
        "fig7" => run_fig7(),
        "telemetry" => run_telemetry(opts),
        "failures" => run_failures(opts),
        "latency" => run_latency(opts),
        "xpander" => run_xpander(opts),
        "table1" => run_table1(opts),
        "ablation" => run_ablation(opts),
        "two-tier" => run_two_tier(opts),
        "verify" => run_verify(opts),
        "churn" => run_churn(opts),
        "race" => run_race(opts),
        "trace" => run_trace(opts),
        "timeline" => run_timeline(opts),
        other => usage(&format!("unknown experiment: {other}")),
    }
}

/// `elmo-eval trace` — trace one packet's causal copy tree through the
/// paper-example fabric, print it annotated with match sources and rule
/// attributions, and cross-check its host leaves against the static walk
/// and the actual deliveries. Exit 1 if the three host sets disagree or
/// `--expect-nodes` mismatches.
fn run_trace(opts: &Opts) {
    let run = match elmo_sim::trace_exp::run(opts.group, opts.sender) {
        Ok(r) => r,
        Err(e) => {
            elmo_obs::error!("trace.failed", error = e.as_str());
            std::process::exit(1);
        }
    };
    println!(
        "copy tree: fixture group {} (members {:?}), sender {}\n",
        opts.group,
        elmo_sim::trace_exp::FIXTURE_SHAPES[opts.group as usize - 1],
        opts.sender
            .unwrap_or(elmo_sim::trace_exp::FIXTURE_SHAPES[opts.group as usize - 1][0]),
    );
    println!("{}", run.rendered);
    println!(
        "{} nodes, {} host leaves; static walk predicts {} hosts; replay delivered to {} -> {}",
        run.nodes(),
        run.tree_hosts.len(),
        run.walk_hosts.len(),
        run.delivered_hosts.len(),
        if run.ok { "ok" } else { "MISMATCH" },
    );
    if let Some(path) = &opts.trace_out {
        match std::fs::write(path, run.tree.to_json()) {
            Ok(()) => elmo_obs::info!("trace.tree_written", path = path.as_str()),
            Err(e) => {
                elmo_obs::error!(
                    "trace.write_failed",
                    path = path.as_str(),
                    error = e.to_string()
                );
                std::process::exit(1);
            }
        }
    }
    if !run.ok {
        elmo_obs::error!(
            "trace.host_set_mismatch",
            tree = format!("{:?}", run.tree_hosts),
            walk = format!("{:?}", run.walk_hosts),
            replay = format!("{:?}", run.delivered_hosts)
        );
        std::process::exit(1);
    }
    if let Some(n) = opts.expect_nodes {
        if run.nodes() != n {
            elmo_obs::error!("trace.node_count_mismatch", expected = n, got = run.nodes());
            std::process::exit(1);
        }
        println!("node count matches --expect-nodes {n}");
    }
    println!();
}

/// `elmo-eval timeline` — the windowed failure replay: `--windows`
/// logical ticks of `--tick` packets each through the sharded engine,
/// with the copy tree's first spine hop failed during the middle third.
/// `--timeline-out` writes one JSONL line per window. Exit 1 if the run
/// shows no loss window (the failure must be observable).
fn run_timeline(opts: &Opts) {
    let shards = opts.replay_threads.unwrap_or(2);
    let run = match elmo_sim::timeline_exp::run(opts.windows, opts.tick, shards) {
        Ok(r) => r,
        Err(e) => {
            elmo_obs::error!("timeline.failed", error = e.as_str());
            std::process::exit(1);
        }
    };
    println!(
        "timeline: {} windows x {} packets, {} replay shards, spine {} failed for the middle third",
        opts.windows, opts.tick, shards, run.failed_spine
    );
    let rows: Vec<Vec<String>> = run
        .rows
        .iter()
        .map(|r| {
            vec![
                r.window.to_string(),
                r.delivered.to_string(),
                r.expected.to_string(),
                if r.failed { "down".into() } else { "up".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["window", "delivered", "expected", "spine"], &rows)
    );
    println!(
        "{} loss windows; flight recorders captured {} events at first shortfall",
        run.loss_windows, run.recorder_events
    );
    if let Some(path) = &opts.timeline_out {
        match run.timeline.write_jsonl(path) {
            Ok(()) => elmo_obs::info!("timeline.written", path = path.as_str()),
            Err(e) => {
                elmo_obs::error!(
                    "timeline.write_failed",
                    path = path.as_str(),
                    error = e.to_string()
                );
                std::process::exit(1);
            }
        }
    }
    if run.loss_windows == 0 {
        elmo_obs::error!("timeline.no_loss_window");
        std::process::exit(1);
    }
    println!();
}

/// `elmo-eval verify` — compile the Figure-4 (P=12) and Figure-5 (P=1)
/// workloads at R = max(--r), install every rule into a simulated fabric,
/// and run the `elmo-verify` static checker plus its differential replay
/// mode. Exit 1 on any violation; `--report-out` writes the JSON reports.
fn run_verify(opts: &Opts) {
    use elmo_sim::verify_exp::{self, VerifyExpConfig};
    let topo = fabric(opts);
    let layout = elmo_core::HeaderLayout::for_clos(&topo);
    // Same budget rule as the sweeps: 30 downstream-leaf p-rules, and at
    // least the paper's 325 bytes on the full fabric.
    let budget = layout
        .max_header_bytes(2, 30, 2)
        .max(if opts.full { 325 } else { 0 });
    let r = opts.r_values.iter().copied().max().unwrap_or(12);
    // Differential replay goes through the sharded engine at a shard
    // count sampled from the seed (2 or 4), unless --replay-threads pins
    // one. Either way the replays diff against the same static walk, so
    // this doubles as a continuous cross-check of the multi-core path.
    // The seed-derived count is clamped to the cores actually available
    // (a CI runner with one core would otherwise time scheduler churn,
    // not the engine) unless --replay-allow-oversubscribed opts in; an
    // explicit --replay-threads is always honored as given.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let replay_threads = opts.replay_threads.unwrap_or_else(|| {
        let seeded = if opts.seed.is_multiple_of(2) { 2 } else { 4 };
        if opts.replay_allow_oversubscribed {
            seeded
        } else {
            seeded.min(cpus.max(1))
        }
    });
    let replay_oversubscribed = replay_threads > cpus;
    let cfg = VerifyExpConfig {
        r,
        header_budget: budget,
        threads: opts.threads,
        samples: opts.samples,
        seed: opts.seed,
        replay_threads,
    };
    let mut reports = std::collections::BTreeMap::new();
    let mut failed = false;
    for (name, p) in [("fig4_p12", 12usize), ("fig5_p1", 1usize)] {
        let mut wl = workload_cfg(opts, &topo, p, GroupSizeDist::Wve);
        if opts.groups.is_none() {
            // The checker walks every (group, sender) pair; bound the
            // default so `verify` stays a seconds-scale smoke. `--groups`
            // overrides.
            wl.total_groups = wl.total_groups.min(2_000);
        }
        let run = verify_exp::run(topo, wl, &cfg);
        let rep = &run.report;
        println!(
            "verify {name}: R={r}, {} groups ({} unicast fallback), {} sender walks, \
             {} differential replays ({replay_threads} shards), {} traffic cross-checks -> {}",
            count(rep.groups_checked as u64),
            rep.skipped_unicast_fallback,
            count(rep.senders_checked as u64),
            run.differential_sampled,
            count(run.traffic_cross_checked as u64),
            if rep.ok() { "ok" } else { "FAIL" },
        );
        println!(
            "  header max {}B of {}B budget, vector max {}B of {}B; \
             leaf s-rules mean {:.1} (max {}), spine mean {:.1} (max {})",
            rep.budgets.max_header_bytes,
            rep.budgets.header_budget_bytes,
            rep.budgets.max_header_vector_bytes,
            rep.budgets.header_vector_limit,
            rep.budgets.leaf_tables.mean,
            rep.budgets.leaf_tables.max,
            rep.budgets.spine_tables.mean,
            rep.budgets.spine_tables.max,
        );
        if !rep.ok() {
            failed = true;
            for v in rep.violations.iter().take(20) {
                println!("  violation: {v}");
            }
            if rep.violations.len() > 20 {
                println!("  ... and {} more", rep.violations.len() - 20);
            }
        }
        reports.insert(name.to_string(), rep.to_json());
    }
    // Temporal update-safety: replay a seeded churn stream on the P=12
    // workload and prove every intermediate patch state leaves in-flight
    // (pre-event) headers either byte-exact or attributably versioned
    // out. `--temporal-events 0` skips the sweep.
    if opts.temporal_events > 0 {
        use elmo_sim::temporal_exp::{self, TemporalExpConfig};
        let mut wl = workload_cfg(opts, &topo, 12, GroupSizeDist::Wve);
        if opts.groups.is_none() {
            wl.total_groups = wl.total_groups.min(2_000);
        }
        let tcfg = TemporalExpConfig {
            r,
            header_budget: budget,
            threads: opts.threads,
            events: opts.temporal_events,
            burst: opts.burst,
            seed: opts.seed ^ 0x7e,
            delta: true,
            max_senders: opts.temporal_senders,
        };
        let trun = temporal_exp::run(topo, wl, &tcfg);
        let rep = &trun.report;
        println!(
            "verify temporal: {} groups, {} churn events, {} steps checked, {} sender walks \
             ({} exact, {} converged, {} versioned out) -> {}",
            count(trun.groups as u64),
            count(rep.events as u64),
            count(rep.steps_checked as u64),
            count(rep.senders_walked as u64),
            count(rep.exact as u64),
            count(rep.converged as u64),
            count(rep.versioned_out as u64),
            if rep.ok() { "ok" } else { "FAIL" },
        );
        if !rep.ok() {
            failed = true;
            for v in rep.violations.iter().take(20) {
                println!("  violation: {}", v.render());
            }
            if rep.violations.len() > 20 {
                println!("  ... and {} more", rep.violations.len() - 20);
            }
        }
        reports.insert("temporal".to_string(), rep.to_json());
    }
    if let Some(path) = &opts.report_out {
        // Record how the differential replays were sharded, so a report
        // produced on an oversubscribed runner is marked as such instead
        // of being indistinguishable from a clean one.
        let mut shards = std::collections::BTreeMap::new();
        shards.insert(
            "threads".to_string(),
            elmo_obs::JsonValue::U64(replay_threads as u64),
        );
        shards.insert(
            "cpus_available".to_string(),
            elmo_obs::JsonValue::U64(cpus as u64),
        );
        shards.insert(
            "oversubscribed".to_string(),
            elmo_obs::JsonValue::Bool(replay_oversubscribed),
        );
        reports.insert(
            "replay_shards".to_string(),
            elmo_obs::JsonValue::Object(shards),
        );
        let json = elmo_obs::JsonValue::Object(reports).pretty();
        match std::fs::write(path, json) {
            Ok(()) => elmo_obs::info!("verify.report_written", path = path.as_str()),
            Err(e) => {
                elmo_obs::error!(
                    "verify.report_write_failed",
                    path = path.as_str(),
                    error = e.to_string()
                );
                std::process::exit(1);
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!();
}

/// `elmo-eval race` — run the `elmo-race` schedule explorer over every
/// clean protocol model and every seeded mutation. Exit 1 if a clean
/// model fails any schedule, a model degenerates below 10 schedules, a
/// mutation goes uncaught, a witness fails to replay identically, or the
/// clean-model schedule total falls below `--expect-min-schedules`.
fn run_race(opts: &Opts) {
    use elmo_race::{clean_models, mutated_models, Explorer};
    let explorer = Explorer::default();
    let mut failed = false;
    let mut total_schedules = 0u64;
    for model in clean_models() {
        let rep = explorer.explore(&model);
        total_schedules += rep.schedules;
        let degenerate = rep.schedules < 10;
        println!(
            "race clean {}: {} schedules, {} executions -> {}",
            rep.model,
            count(rep.schedules),
            count(rep.executions),
            if rep.failure.is_none() && !degenerate {
                "ok"
            } else {
                "FAIL"
            },
        );
        if degenerate {
            failed = true;
            println!("  model degenerated: fewer than 10 distinct schedules");
        }
        if let Some(w) = rep.failure {
            failed = true;
            println!("  failure: {} (schedule {:?})", w.message, w.schedule);
            for line in w.trace.iter().take(30) {
                println!("    {line}");
            }
        }
    }
    for model in mutated_models() {
        let rep = explorer.explore(&model);
        match rep.failure {
            Some(w) => {
                // The witness must replay to the identical failure:
                // that is what makes it actionable.
                let replayed = explorer.replay(&model, &w.schedule);
                let ok = replayed.as_deref() == Some(w.message.as_str());
                println!(
                    "race mutated {}: caught in {} executions, {} preemptions, replay {} -> {}",
                    rep.model,
                    count(rep.executions),
                    w.preemptions,
                    if ok { "identical" } else { "DIVERGED" },
                    if ok { "ok" } else { "FAIL" },
                );
                if !ok {
                    failed = true;
                }
            }
            None => {
                failed = true;
                println!(
                    "race mutated {}: NOT caught in {} schedules -> FAIL",
                    rep.model,
                    count(rep.schedules),
                );
            }
        }
    }
    if let Some(floor) = opts.expect_min_schedules {
        let ok = total_schedules >= floor;
        println!(
            "race schedule floor: {} clean-model schedules, floor {} -> {}",
            count(total_schedules),
            count(floor),
            if ok { "ok" } else { "FAIL" },
        );
        if !ok {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!();
}

/// `elmo-eval churn` — replay a seeded join/leave stream through two
/// controllers, delta re-encode on and off, on the Figure-4 (P=12)
/// workload. Both runs see the identical events in identical bursts; the
/// full installed state is re-verified after every delta-path burst, and
/// the two controllers are held to bit-identical final state. Exit 1 on
/// any violation, divergence, or (with --expect-hit-rate) a delta hit
/// rate below the pinned floor.
fn run_churn(opts: &Opts) {
    use elmo_sim::churn_exp::{self, ChurnExpConfig};
    use elmo_workloads::{initial_roles, Workload};
    let topo = fabric(opts);
    let layout = elmo_core::HeaderLayout::for_clos(&topo);
    let budget = layout
        .max_header_bytes(2, 30, 2)
        .max(if opts.full { 325 } else { 0 });
    let r = opts.r_values.iter().copied().max().unwrap_or(12);
    let mut wl = workload_cfg(opts, &topo, 12, GroupSizeDist::Wve);
    if opts.groups.is_none() {
        // Per-burst verification walks every (group, sender) pair; bound
        // the default so `churn` stays a seconds-scale smoke. `--groups`
        // overrides.
        wl.total_groups = wl.total_groups.min(2_000);
    }
    if let Some(m) = opts.min_group {
        wl.min_group_size = m;
    }
    let cfg_on = ChurnExpConfig {
        r,
        header_budget: budget,
        threads: opts.threads,
        events: opts.events,
        burst: opts.burst,
        seed: opts.seed ^ 0xc4,
        delta: opts.delta,
        verify_each_burst: true,
    };
    let workload = Workload::generate(topo, wl);
    let roles = initial_roles(&workload, wl.seed);
    let mut on = churn_exp::build_controller(topo, &workload, &roles, &cfg_on);
    let run_on = churn_exp::replay(&workload, &roles, &cfg_on, &mut on);

    // The baseline: same stream, same bursts, delta path disabled, no
    // per-burst verification (final-state identity is the check).
    let cfg_off = ChurnExpConfig {
        delta: false,
        verify_each_burst: false,
        ..cfg_on
    };
    let mut off = churn_exp::build_controller(topo, &workload, &roles, &cfg_off);
    let run_off = churn_exp::replay(&workload, &roles, &cfg_off, &mut off);

    let mut failed = false;
    let mode = if opts.delta {
        "delta"
    } else {
        "full (--delta off)"
    };
    println!(
        "churn: {} groups, {} events in bursts of {}, R={r}, {mode} path timed",
        count(run_on.groups as u64),
        count(run_on.events as u64),
        opts.burst.max(1),
    );
    println!(
        "  {mode}: {:.0} ops/s, p95 event {:.1} us; baseline full: {:.0} ops/s, p95 {:.1} us; speedup {:.1}x",
        run_on.events_per_sec(),
        run_on.p95_event_ns() as f64 / 1e3,
        run_off.events_per_sec(),
        run_off.p95_event_ns() as f64 / 1e3,
        run_on.events_per_sec() / run_off.events_per_sec(),
    );
    println!(
        "  per event: hit {:.1} us (n={}), full {:.1} us (n={}); baseline full {:.1} us -> per-hit speedup {:.1}x",
        run_on.hit_ns.mean_ns() / 1e3,
        count(run_on.hit_ns.count),
        run_on.full_ns.mean_ns() / 1e3,
        count(run_on.full_ns.count),
        run_off.full_ns.mean_ns() / 1e3,
        run_off.full_ns.mean_ns() / run_on.hit_ns.mean_ns(),
    );
    let s = &run_on.stats;
    println!(
        "  delta hits {} / full re-encodes {} (structural {}) -> hit rate {}; \
         verified {} bursts -> {}",
        count(s.delta_hits),
        count(s.full_reencodes),
        count(s.structural_escalations),
        pct(run_on.delta_hit_rate()),
        run_on.verified_bursts,
        if run_on.verify_violations == 0 {
            "clean".to_string()
        } else {
            failed = true;
            format!("{} VIOLATIONS", run_on.verify_violations)
        },
    );
    match churn_exp::states_identical(&on, &off) {
        Ok(()) => println!("  final state bit-identical to the full re-encode baseline"),
        Err(e) => {
            failed = true;
            println!("  DIVERGED from the full re-encode baseline: {e}");
        }
    }
    if let Some(floor) = opts.expect_hit_rate {
        let got = run_on.delta_hit_rate() * 100.0;
        // NaN (no events) must also fail the floor, hence not `got < floor`.
        if !matches!(
            got.partial_cmp(&(floor as f64)),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ) {
            failed = true;
            println!("  delta hit rate {got:.1}% below pinned floor {floor}%");
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!();
}

/// §5.1.2 limits Fmax to 10,000 at full scale; scale it with the workload.
fn scaled_fmax(opts: &Opts) -> usize {
    if opts.full {
        10_000
    } else {
        500
    }
}

fn run_sweep(
    opts: &Opts,
    p: usize,
    dist: GroupSizeDist,
    fmax: usize,
    leaf_rules: usize,
    title: &str,
) {
    let topo = fabric(opts);
    // Express the budget as "this many downstream-leaf p-rules", so scaled
    // fabrics (smaller bitmaps, shorter identifiers) face the same pressure
    // the paper's 325 bytes puts on the full fabric. For the full fabric,
    // 30 rules <=> the paper's 325-byte cap.
    let layout = elmo_core::HeaderLayout::for_clos(&topo);
    let budget = layout
        .max_header_bytes(2, leaf_rules, 2)
        .max(if opts.full && leaf_rules >= 30 {
            325
        } else {
            0
        });
    let wl = workload_cfg(opts, &topo, p, dist);
    let mut cfg = SweepConfig::paper(topo, wl);
    cfg.r_values = opts.r_values.clone();
    cfg.leaf_fmax = fmax;
    cfg.spine_fmax = fmax;
    cfg.header_budget = budget;
    cfg.threads = opts.threads;
    if let Some(extra) = opts.extra_payload {
        if !cfg.payloads.contains(&extra) {
            cfg.payloads.push(extra);
        }
    }
    let result = sweep::run(&cfg);

    println!(
        "{title}: placement P={p}, {dist:?} sizes, {} hosts, {} groups, {}B header budget, Fmax={}",
        count(topo.num_hosts() as u64),
        count(wl.total_groups as u64),
        budget,
        if fmax == usize::MAX {
            "unlimited".into()
        } else {
            fmax.to_string()
        },
    );
    let mut rows = Vec::new();
    for row in &result.rows {
        let mut cells = vec![
            row.r.to_string(),
            format!(
                "{} ({})",
                count(row.covered as u64),
                pct(row.covered as f64 / row.total_groups as f64)
            ),
            count(row.defaulted as u64),
            format!(
                "{:.0} / {} / {}",
                row.leaf_srules.mean, row.leaf_srules.p95, row.leaf_srules.max
            ),
            format!(
                "{:.0} / {} / {}",
                row.spine_srules.mean, row.spine_srules.p95, row.spine_srules.max
            ),
            format!(
                "{:.0} / {:.0} / {:.0}",
                row.header_bytes.min,
                row.header_bytes.mean(),
                row.header_bytes.max
            ),
        ];
        for t in &row.traffic {
            cells.push(ratio(t.elmo_ratio));
        }
        rows.push(cells);
    }
    let payload_labels: Vec<String> = result.rows[0]
        .traffic
        .iter()
        .map(|t| format!("elmo x ({}B)", t.payload))
        .collect();
    let mut headers = vec![
        "R",
        "covered groups",
        "defaulted",
        "leaf s-rules m/p95/max",
        "spine s-rules m/p95/max",
        "header B min/mean/max",
    ];
    for l in &payload_labels {
        headers.push(l.as_str());
    }
    println!("{}", table(&headers, &rows));
    let t0 = &result.rows[0].traffic[0];
    println!(
        "baselines at {}B payload: unicast {} of ideal, overlay {} of ideal",
        t0.payload,
        ratio(t0.unicast_ratio),
        ratio(t0.overlay_ratio)
    );
    println!(
        "Li et al. group-table entries: leaf mean {:.0} (max {}), spine mean {:.0} (max {})\n",
        result.li_leaf.mean, result.li_leaf.max, result.li_spine.mean, result.li_spine.max
    );
}

fn run_table2(opts: &Opts) {
    let topo = fabric(opts);
    let wl = workload_cfg(opts, &topo, 1, GroupSizeDist::Wve);
    let t = elmo_sim::table2::run(topo, wl, opts.events, 1000.0, opts.threads);
    println!(
        "Table 2: {} churn events at 1,000 events/s, P=1, WVE ({} hosts, {} groups)",
        count(t.events as u64),
        count(topo.num_hosts() as u64),
        count(wl.total_groups as u64)
    );
    let rows = vec![
        vec![
            "hypervisor".into(),
            avg_max(t.hypervisor.avg_per_sec, t.hypervisor.max_per_sec),
            "not evaluated".into(),
        ],
        vec![
            "leaf".into(),
            avg_max(t.leaf.avg_per_sec, t.leaf.max_per_sec),
            avg_max(t.li_leaf.avg_per_sec, t.li_leaf.max_per_sec),
        ],
        vec![
            "spine".into(),
            avg_max(t.spine.avg_per_sec, t.spine.max_per_sec),
            avg_max(t.li_spine.avg_per_sec, t.li_spine.max_per_sec),
        ],
        vec![
            "core".into(),
            avg_max(t.core.avg_per_sec, t.core.max_per_sec),
            avg_max(t.li_core.avg_per_sec, t.li_core.max_per_sec),
        ],
    ];
    println!(
        "{}",
        table(
            &[
                "switch tier",
                "Elmo avg (max) upd/s",
                "Li et al. avg (max) upd/s"
            ],
            &rows
        )
    );
}

fn run_table3() {
    println!("Table 3: comparison with related multicast approaches");
    println!("(evaluated at 5,000 group-table rules, 325-byte header budget)\n");
    let schemes = elmo_sim::table3::schemes();
    let mut headers: Vec<&str> = vec!["feature"];
    for s in &schemes {
        headers.push(s.name);
    }
    let yn = |b: bool| {
        if b {
            "yes".to_string()
        } else {
            "no".to_string()
        }
    };
    let rows: Vec<Vec<String>> = vec![
        std::iter::once("#Groups".into())
            .chain(schemes.iter().map(|s| s.groups.into()))
            .collect(),
        std::iter::once("Group-table usage".into())
            .chain(schemes.iter().map(|s| s.group_table_usage.into()))
            .collect(),
        std::iter::once("Flow-table usage".into())
            .chain(schemes.iter().map(|s| s.flow_table_usage.into()))
            .collect(),
        std::iter::once("Group-size limits".into())
            .chain(schemes.iter().map(|s| s.group_size_limit.into()))
            .collect(),
        std::iter::once("Network-size limits".into())
            .chain(schemes.iter().map(|s| s.network_size_limit.into()))
            .collect(),
        std::iter::once("Unorthodox switches".into())
            .chain(schemes.iter().map(|s| yn(s.unorthodox_switch)))
            .collect(),
        std::iter::once("Line-rate processing".into())
            .chain(schemes.iter().map(|s| yn(s.line_rate)))
            .collect(),
        std::iter::once("Addr-space isolation".into())
            .chain(schemes.iter().map(|s| yn(s.address_space_isolation)))
            .collect(),
        std::iter::once("Multipath forwarding".into())
            .chain(schemes.iter().map(|s| s.multipath.into()))
            .collect(),
        std::iter::once("Control overhead".into())
            .chain(schemes.iter().map(|s| s.control_overhead.into()))
            .collect(),
        std::iter::once("Traffic overhead".into())
            .chain(schemes.iter().map(|s| s.traffic_overhead.into()))
            .collect(),
        std::iter::once("End-host replication".into())
            .chain(schemes.iter().map(|s| yn(s.end_host_replication)))
            .collect(),
    ];
    println!("{}", table(&headers, &rows));
}

fn run_fig6(opts: &Opts) {
    use elmo_apps::pubsub::{run_sharded, Transport};
    use elmo_apps::HostModel;
    let topo = if opts.full {
        Clos::facebook_fabric()
    } else {
        Clos::scaled_fabric(4, 8, 12)
    };
    let model = HostModel::default();
    let rt = opts.replay_threads.unwrap_or(1);
    println!("Figure 6: pub-sub over ZeroMQ-style workload, 100-byte messages");
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        if n + 1 >= topo.num_hosts() {
            break;
        }
        let uni = run_sharded(topo, n, 100, Transport::Unicast, &model, rt);
        let elmo = run_sharded(topo, n, 100, Transport::Elmo, &model, rt);
        assert!(
            uni.delivery_verified && elmo.delivery_verified,
            "fabric delivery broken"
        );
        rows.push(vec![
            n.to_string(),
            format!("{:.1}K", elmo.rps_per_subscriber / 1000.0),
            format!("{:.1}K", uni.rps_per_subscriber / 1000.0),
            format!("{:.1}%", elmo.publisher_cpu_pct),
            format!("{:.1}%", uni.publisher_cpu_pct),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "subscribers",
                "Elmo rps",
                "unicast rps",
                "Elmo CPU",
                "unicast CPU"
            ],
            &rows
        )
    );
}

fn run_fig7() {
    println!(
        "Figure 7: hypervisor (PISCES-model) encap throughput, 128-byte inner frames, 20 Gbps NIC"
    );
    let points = elmo_sim::perf::fig7(
        Clos::facebook_fabric(),
        &[0, 5, 10, 15, 20, 25, 30],
        128,
        20.0,
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.p_rules.to_string(),
                p.packet_bytes.to_string(),
                format!("{:.2}", p.mpps),
                format!("{:.2}", p.gbps),
                format!("{:.1}", p.sw_mpps),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "p-rules",
                "packet B",
                "Mpps (20G link)",
                "Gbps",
                "sw encap Mpps"
            ],
            &rows
        )
    );
}

fn run_telemetry(opts: &Opts) {
    use elmo_apps::pubsub::Transport;
    use elmo_apps::telemetry::{run, TelemetryConfig};
    let topo = if opts.full {
        Clos::facebook_fabric()
    } else {
        Clos::scaled_fabric(4, 8, 12)
    };
    println!("Host telemetry (sFlow): agent egress bandwidth vs collectors");
    let cfg = TelemetryConfig {
        replay_threads: opts.replay_threads.unwrap_or(1),
        ..TelemetryConfig::default()
    };
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        if n + 1 >= topo.num_hosts() {
            break;
        }
        let uni = run(topo, n, cfg, Transport::Unicast);
        let elmo = run(topo, n, cfg, Transport::Elmo);
        assert_eq!(uni.received_total, uni.expected_total);
        assert_eq!(elmo.received_total, elmo.expected_total);
        rows.push(vec![
            n.to_string(),
            format!("{:.1} Kbps", elmo.egress_kbps),
            format!("{:.1} Kbps", uni.egress_kbps),
        ]);
    }
    println!(
        "{}",
        table(&["collectors", "Elmo egress", "unicast egress"], &rows)
    );
}

fn run_failures(opts: &Opts) {
    let topo = fabric(opts);
    let wl = workload_cfg(opts, &topo, 1, GroupSizeDist::Wve);
    println!(
        "Failure handling (§5.1.3b): {} hosts, {} groups, P=1, WVE",
        count(topo.num_hosts() as u64),
        count(wl.total_groups as u64)
    );
    let rows: Vec<Vec<String>> = elmo_sim::failure_exp::run(topo, wl)
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                pct(r.affected_fraction),
                avg_max(r.mean_hv_updates, r.max_hv_updates as f64),
                r.degraded_to_unicast.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "scenario",
                "groups affected",
                "hv updates avg (max)",
                "degraded to unicast"
            ],
            &rows
        )
    );
}

fn run_latency(opts: &Opts) {
    let topo = fabric(opts);
    let wl = workload_cfg(opts, &topo, 1, GroupSizeDist::Wve);
    let stats = elmo_sim::perf::controller_latency(topo, wl, 2_000);
    println!("Controller rule-computation latency (Algorithm 1 + header assembly):");
    println!(
        "  {} groups sampled: mean {:.1} us, p99 {:.1} us, max {:.1} us",
        count(stats.groups as u64),
        stats.mean_us,
        stats.p99_us,
        stats.max_us
    );
    println!("  (paper's Python controller: 0.20 ms +/- 0.45 ms)\n");
}

fn run_xpander(opts: &Opts) {
    use elmo_topology::xpander::Xpander;
    let x = Xpander::paper_config();
    let groups = opts
        .groups
        .unwrap_or(if opts.full { 100_000 } else { 5_000 });
    let r = elmo_sim::xpander_exp::run(&x, groups, 325, opts.seed);
    println!(
        "Xpander (48-port switches, degree 24, {} hosts): {} WVE groups",
        count(x.num_hosts() as u64),
        count(r.groups as u64)
    );
    println!(
        "  header bytes min/mean/max: {:.0} / {:.0} / {:.0}; {} fit the {}-byte budget\n",
        r.header_bytes.min,
        r.header_bytes.mean(),
        r.header_bytes.max,
        pct(r.fit_fraction),
        r.budget_bytes
    );
}

fn run_two_tier(opts: &Opts) {
    // "We saw qualitatively similar results while running experiments for a
    // two-tier leaf-spine topology like that used in CONGA" (paper §5.1.1).
    let topo = if opts.full {
        Clos::two_tier(48, 48) // one 2,304-host pod at full port widths
    } else {
        Clos::two_tier(24, 16)
    };
    let wl = workload_cfg(opts, &topo, 12, GroupSizeDist::Wve);
    let layout = elmo_core::HeaderLayout::for_clos(&topo);
    let budget = layout.max_header_bytes(2, 30, 2);
    let mut cfg = SweepConfig::paper(topo, wl);
    cfg.r_values = opts.r_values.clone();
    cfg.header_budget = budget;
    cfg.threads = opts.threads;
    let result = sweep::run(&cfg);
    println!(
        "Two-tier leaf-spine ({} leaves x {} hosts): coverage and traffic vs R",
        topo.num_leaves(),
        topo.params().hosts_per_leaf
    );
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|row| {
            let t = &row.traffic[0];
            vec![
                row.r.to_string(),
                pct(row.covered as f64 / row.total_groups as f64),
                format!("{:.0}", row.leaf_srules.mean),
                ratio(t.elmo_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["R", "covered", "leaf s-rules mean", "elmo x (1500B)"],
            &rows
        )
    );
}

fn run_ablation(opts: &Opts) {
    use elmo_sim::ablation;
    use elmo_topology::{GroupTree, HostId};
    use elmo_workloads::Workload;

    // The paper's running example first (its 161 -> 83 -> 62 bit walk).
    let example = Clos::paper_example();
    let tree = GroupTree::new(
        &example,
        [
            HostId(0),
            HostId(1),
            HostId(42),
            HostId(48),
            HostId(49),
            HostId(57),
        ],
    );
    let p = ablation::ablate(&example, &tree, HostId(0), 2);
    println!("Design-decision ablation (paper 3.1):\n");
    println!(
        "running example (paper: 161 -> 83 -> 62 bits): D1 {} -> D2 {} -> D3 {} bits \
         (reductions {} and {})",
        p.d1_bits,
        p.d2_bits,
        p.d3_bits,
        pct(p.d2_reduction()),
        pct(p.d3_reduction()),
    );

    // And averaged over a workload on the evaluation fabric.
    let topo = fabric(opts);
    let mut wl = workload_cfg(opts, &topo, 12, GroupSizeDist::Wve);
    wl.total_groups = wl.total_groups.min(5_000);
    let workload = Workload::generate(topo, wl);
    let (mut d1, mut d2, mut d3) = (0u64, 0u64, 0u64);
    for g in &workload.groups {
        let hosts = workload.member_hosts(g);
        let tree = GroupTree::new(&topo, hosts.iter().copied());
        let p = ablation::ablate(&topo, &tree, hosts[0], 12);
        d1 += p.d1_bits as u64;
        d2 += p.d2_bits as u64;
        d3 += p.d3_bits as u64;
    }
    let n = workload.groups.len() as u64;
    println!(
        "\n{} WVE groups, P=12, R=12: mean header bits D1 {} -> D2 {} ({}) -> D3 {} ({})\n",
        count(n),
        d1 / n,
        d2 / n,
        pct(1.0 - d2 as f64 / d1 as f64),
        d3 / n,
        pct(1.0 - d3 as f64 / d2 as f64),
    );
}

fn run_table1(opts: &Opts) {
    let topo = fabric(opts);
    let wl = workload_cfg(opts, &topo, 12, GroupSizeDist::Wve);
    let mut cfg = SweepConfig::paper(topo, wl);
    cfg.r_values = vec![0, 12];
    cfg.threads = opts.threads;
    let result = sweep::run(&cfg);
    let r0 = &result.rows[0];
    let r12 = result.rows.last().expect("rows");
    println!(
        "Table 1: summary of results ({} hosts, {} groups, WVE, P=12)\n",
        count(topo.num_hosts() as u64),
        count(wl.total_groups as u64)
    );
    println!(
        "  (i)   groups covered by p-rules without defaults: {} at R=0, {} at R=12",
        pct(r0.covered as f64 / r0.total_groups as f64),
        pct(r12.covered as f64 / r12.total_groups as f64)
    );
    println!(
        "        p-rule header bytes min/mean/max: {:.0} / {:.0} / {:.0}",
        r12.header_bytes.min,
        r12.header_bytes.mean(),
        r12.header_bytes.max
    );
    println!(
        "  (ii)  s-rules per leaf switch mean (max): {:.0} ({}); per spine: {:.0} ({})",
        r0.leaf_srules.mean, r0.leaf_srules.max, r0.spine_srules.mean, r0.spine_srules.max
    );
    let t1500 = r12
        .traffic
        .iter()
        .find(|t| t.payload == 1500)
        .expect("1500B row");
    let t64 = r12
        .traffic
        .iter()
        .find(|t| t.payload == 64)
        .expect("64B row");
    println!(
        "  (iii) traffic overhead over ideal at R=12: {} (1500B), {} (64B); unicast {}, overlay {}",
        pct(t1500.elmo_ratio - 1.0),
        pct(t64.elmo_ratio - 1.0),
        pct(t64.unicast_ratio - 1.0),
        pct(t64.overlay_ratio - 1.0)
    );
    println!("  (iv)  run `elmo-eval table2` for control-plane update loads\n");
}
