//! Per-group metrics: traffic, header sizes, coverage.
//!
//! Traffic is computed analytically — mirroring the data-plane forwarding
//! semantics hop by hop, including header popping, p-rule sharing
//! redundancy, default-p-rule spray, and hypervisor-side discards — instead
//! of materializing packets, so a million groups evaluate in seconds. A
//! cross-validation test (`tests/analytic_matches_dataplane.rs` at the
//! workspace root) checks these numbers byte-for-byte against real packets
//! pushed through `elmo_dataplane::Fabric`.

use elmo_core::{header_for_sender, GroupEncoding, HeaderLayout, PortBitmap};
use elmo_dataplane::ElmoPacketRepr;
use elmo_topology::{Clos, GroupTree, HostId, LeafId, UpstreamCover};

/// Outer encapsulation bytes on every wire packet (Ethernet + IPv4 + UDP +
/// VXLAN).
pub const OUTER: u64 = ElmoPacketRepr::OUTER_LEN as u64;

/// Byte counts for one multicast transmission of one packet.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct GroupTraffic {
    /// Bytes Elmo puts on all links.
    pub elmo: u64,
    /// Bytes ideal multicast puts on all links (per-link single copies, no
    /// Elmo header).
    pub ideal: u64,
    /// Bytes sender-side unicast replication puts on all links.
    pub unicast: u64,
    /// Bytes overlay multicast puts on all links (one unicast copy per
    /// member leaf, then leaf-local re-replication by a proxy host).
    pub overlay: u64,
}

impl GroupTraffic {
    /// Elmo's overhead over ideal multicast, as a ratio (1.0 = ideal).
    pub fn elmo_ratio(&self) -> f64 {
        self.elmo as f64 / self.ideal as f64
    }

    /// Unicast's overhead ratio.
    pub fn unicast_ratio(&self) -> f64 {
        self.unicast as f64 / self.ideal as f64
    }

    /// Overlay multicast's overhead ratio.
    pub fn overlay_ratio(&self) -> f64 {
        self.overlay as f64 / self.ideal as f64
    }
}

/// Payload-independent traffic constants for one (group, sender) pair.
///
/// Every scheme's byte count is *affine in the payload*: each copy on a
/// link costs its fixed encapsulation (outer headers plus whatever Elmo
/// header survives at that stage) plus the payload once. So one fabric walk
/// suffices to price every payload size — [`eval`](Self::eval) derives a
/// [`GroupTraffic`] row arithmetically, bit-identical to walking the fabric
/// with that payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrafficModel {
    /// Copies Elmo puts on links (wire hops + host deliveries).
    pub elmo_links: u64,
    /// Elmo's per-transmission fixed bytes: `OUTER` per copy plus the
    /// residual Elmo header on each wire copy.
    pub elmo_fixed: u64,
    /// Links ideal multicast uses (one exact copy per link).
    pub ideal_links: u64,
    /// Link crossings for sender-side unicast replication.
    pub unicast_links: u64,
    /// Link crossings for overlay multicast.
    pub overlay_links: u64,
    /// The representative sender's full Elmo header size in bytes.
    pub header_len: u64,
}

impl TrafficModel {
    /// Price one transmission of `payload` inner bytes.
    pub fn eval(&self, payload: u64) -> GroupTraffic {
        GroupTraffic {
            elmo: self.elmo_fixed + self.elmo_links * payload,
            ideal: self.ideal_links * (OUTER + payload),
            unicast: self.unicast_links * (OUTER + payload),
            overlay: self.overlay_links * (OUTER + payload),
        }
    }
}

/// Compute the traffic constants for one group and sender in a single
/// fabric walk.
pub fn traffic_model(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    enc: &GroupEncoding,
    sender: HostId,
) -> TrafficModel {
    let (elmo_links, elmo_fixed, header_len) = elmo_walk(topo, layout, tree, enc, sender);
    TrafficModel {
        elmo_links,
        elmo_fixed,
        ideal_links: tree.ideal_link_count(topo, sender) as u64,
        unicast_links: unicast_link_count(topo, tree, sender),
        overlay_links: overlay_link_count(topo, tree, sender),
        header_len,
    }
}

/// Compute all traffic numbers for one group, one sender, one packet of
/// `payload` bytes (the tenant's inner frame size).
pub fn group_traffic(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    enc: &GroupEncoding,
    sender: HostId,
    payload: u64,
) -> GroupTraffic {
    traffic_model(topo, layout, tree, enc, sender).eval(payload)
}

/// Walk the fabric once for Elmo, mirroring the switch pipeline exactly
/// (see `elmo_dataplane::netswitch`), and return `(copies, fixed bytes,
/// sender header bytes)`: every wire copy contributes `OUTER` plus its
/// residual header to the fixed bytes, every host-bound copy (Elmo header
/// removed entirely, VXLAN next-header reverts to Ethernet) contributes
/// `OUTER`.
fn elmo_walk(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    enc: &GroupEncoding,
    sender: HostId,
) -> (u64, u64, u64) {
    let header = header_for_sender(topo, layout, tree, enc, sender, &UpstreamCover::multipath());
    let header_len = header.byte_len(layout) as u64;
    let sender_leaf = topo.leaf_of_host(sender);
    let sender_pod = topo.pod_of_leaf(sender_leaf);

    let mut header = header;
    let mut links = 0u64;
    let mut fixed = 0u64;
    // One wire copy costs OUTER plus its residual header; one host copy
    // costs OUTER (Elmo header stripped). Macros rather than closures so
    // both can fold into the same accumulators.
    macro_rules! wire {
        ($h:expr) => {{
            links += 1;
            fixed += OUTER + $h.byte_len(layout) as u64;
        }};
    }
    macro_rules! hosts {
        ($k:expr) => {{
            let k: u64 = $k;
            links += k;
            fixed += k * OUTER;
        }};
    }

    // Host -> leaf.
    wire!(&header);
    let u_leaf = header.u_leaf.clone().expect("sender header has u-leaf");
    // Leaf -> co-located receivers.
    hosts!(u_leaf.down.count_ones() as u64);
    if !u_leaf.goes_up() {
        return (links, fixed, header_len);
    }
    // Leaf -> spine (u-leaf popped). Multipath sends one copy; explicit
    // covers would send one per listed port, but this path models the
    // failure-free case.
    header.pop_upstream_leaf();
    wire!(&header);

    let u_spine = header
        .u_spine
        .clone()
        .expect("multi-leaf group has u-spine");
    // Upstream spine -> local member leaves: next hop is a leaf, so only the
    // d-leaf section remains.
    let leaf_stage = {
        let mut h = header.clone();
        h.pop_upstream_spine();
        h.pop_core();
        h.pop_d_spine();
        h
    };
    for leaf_idx in u_spine.down.iter_ones() {
        wire!(&leaf_stage);
        let leaf = topo.leaf_in_pod(sender_pod, leaf_idx);
        hosts!(leaf_deliveries(tree, enc, leaf));
    }
    if !u_spine.goes_up() {
        return (links, fixed, header_len);
    }
    // Spine -> core (u-spine popped).
    header.pop_upstream_spine();
    wire!(&header);
    // Core -> remote pods (core rule popped).
    let core = header.core.clone().expect("cross-pod group has core rule");
    header.pop_core();
    for pod_idx in core.iter_ones() {
        wire!(&header);
        let pod = elmo_topology::PodId(pod_idx as u32);
        // Downstream spine rule resolution: p-rule, else s-rule, else the
        // default p-rule. The core bitmap only targets member pods, and
        // `bitmap_for` covers all three rule sources for members. The one
        // exception is a single-pod receiver tree reached by a sender from
        // another pod: the shared encoding skips the spine layer entirely
        // and `header_for_sender` synthesizes the rule into the header, so
        // mirror that here.
        let leaf_ports: PortBitmap = enc.d_spine.bitmap_for(pod.0).cloned().unwrap_or_else(|| {
            PortBitmap::from_ports(topo.spine_down_ports(), tree.leaf_ports_in_pod(topo, pod))
        });
        for leaf_idx in leaf_ports.iter_ones() {
            wire!(&leaf_stage);
            let leaf = topo.leaf_in_pod(pod, leaf_idx);
            hosts!(leaf_deliveries(tree, enc, leaf));
        }
    }
    (links, fixed, header_len)
}

/// Bytes on the wire for one Elmo transmission of `payload` inner bytes.
pub fn elmo_bytes(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    enc: &GroupEncoding,
    sender: HostId,
    payload: u64,
) -> u64 {
    let (links, fixed, _) = elmo_walk(topo, layout, tree, enc, sender);
    fixed + links * payload
}

/// How many host copies a leaf emits for this group: its exact rule when it
/// has one (p-rule bitmaps may include spurious ports from sharing), the
/// default-rule spray for spurious non-member leaves, zero (drop) otherwise.
fn leaf_deliveries(tree: &GroupTree, enc: &GroupEncoding, leaf: LeafId) -> u64 {
    if let Some(bm) = enc.d_leaf.bitmap_for(leaf.0) {
        return bm.count_ones() as u64;
    }
    if tree.has_leaf(leaf) {
        // Member leaf without a d-leaf entry: only possible for single-leaf
        // groups (handled upstream) — treat as exact delivery.
        return tree.hosts_on_leaf(leaf).len() as u64;
    }
    // Spurious copy at a non-member leaf: the default p-rule sprays, or the
    // packet drops.
    enc.d_leaf
        .default_rule
        .as_ref()
        .map_or(0, |bm| bm.count_ones() as u64)
}

/// Links a unicast copy crosses between two hosts.
fn unicast_links(topo: &Clos, a: HostId, b: HostId) -> u64 {
    let la = topo.leaf_of_host(a);
    let lb = topo.leaf_of_host(b);
    if la == lb {
        2 // host -> leaf -> host
    } else if topo.pod_of_leaf(la) == topo.pod_of_leaf(lb) {
        4 // + leaf -> spine -> leaf
    } else {
        6 // + spine -> core -> spine
    }
}

/// Link crossings for sender-side unicast replication: one copy per
/// receiver, full path each.
fn unicast_link_count(topo: &Clos, tree: &GroupTree, sender: HostId) -> u64 {
    tree.members()
        .iter()
        .filter(|&&m| m != sender)
        .map(|&m| unicast_links(topo, sender, m))
        .sum()
}

/// Sender-side unicast replication bytes for one `payload`-byte packet.
pub fn unicast_bytes(topo: &Clos, tree: &GroupTree, sender: HostId, payload: u64) -> u64 {
    unicast_link_count(topo, tree, sender) * (OUTER + payload)
}

/// Link crossings for overlay multicast (paper footnote 5): the source
/// hypervisor unicasts one copy to a proxy host under each participating
/// leaf; the proxy replicates to the other member hosts under that leaf
/// (each a 2-link unicast).
fn overlay_link_count(topo: &Clos, tree: &GroupTree, sender: HostId) -> u64 {
    let sender_leaf = topo.leaf_of_host(sender);
    let mut links = 0u64;
    for leaf in tree.leaves() {
        let hosts = tree.hosts_on_leaf(leaf);
        if leaf == sender_leaf {
            // The sender itself is the proxy for its own leaf.
            links += hosts.iter().filter(|&&h| h != sender).count() as u64 * 2;
        } else {
            let proxy = hosts[0];
            links += unicast_links(topo, sender, proxy);
            links += (hosts.len() as u64 - 1) * 2;
        }
    }
    links
}

/// Overlay multicast bytes for one `payload`-byte packet.
pub fn overlay_bytes(topo: &Clos, tree: &GroupTree, sender: HostId, payload: u64) -> u64 {
    overlay_link_count(topo, tree, sender) * (OUTER + payload)
}

/// Header size of the representative sender's packet.
pub fn header_bytes(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    enc: &GroupEncoding,
    sender: HostId,
) -> usize {
    header_for_sender(topo, layout, tree, enc, sender, &UpstreamCover::multipath()).byte_len(layout)
}

/// Streaming summary over per-group scalar metrics.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Summary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_core::{encode_group, EncoderConfig};
    use elmo_topology::{Clos, PodId};

    fn setup(r: usize, srules: bool) -> (Clos, HeaderLayout, GroupTree, GroupEncoding) {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        let tree = GroupTree::new(
            &topo,
            [
                HostId(0),
                HostId(1),
                HostId(42),
                HostId(48),
                HostId(49),
                HostId(57),
            ],
        );
        let cfg = EncoderConfig::with_budget(&layout, 325, r);
        let mut sa = |_p: PodId| srules;
        let mut la = |_l: LeafId| srules;
        let enc = encode_group(&topo, &tree, &cfg, &mut sa, &mut la);
        (topo, layout, tree, enc)
    }

    #[test]
    fn exact_encoding_traffic_shape() {
        let (topo, layout, tree, enc) = setup(0, true);
        let t = group_traffic(&topo, &layout, &tree, &enc, HostId(0), 1500);
        // R=0 with s-rules: no spurious copies; only header bytes over ideal.
        assert!(t.elmo > t.ideal, "headers cost something");
        assert!(t.elmo_ratio() < 1.10, "ratio {}", t.elmo_ratio());
        // Unicast and overlay cost much more.
        assert!(t.unicast > t.elmo);
        assert!(t.overlay > t.ideal);
        assert!(t.unicast > t.overlay, "unicast is the worst");
    }

    #[test]
    fn redundancy_increases_traffic() {
        let (topo, layout, tree, enc0) = setup(0, true);
        let (_, _, _, enc2) = setup(2, false);
        let t0 = elmo_bytes(&topo, &layout, &tree, &enc0, HostId(0), 1500);
        let t2 = elmo_bytes(&topo, &layout, &tree, &enc2, HostId(0), 1500);
        // R=2 shares bitmaps, paying spurious host copies.
        assert!(t2 >= t0, "{t2} < {t0}");
    }

    #[test]
    fn small_packets_amplify_header_overhead() {
        let (topo, layout, tree, enc) = setup(0, true);
        let t64 = group_traffic(&topo, &layout, &tree, &enc, HostId(0), 64);
        let t1500 = group_traffic(&topo, &layout, &tree, &enc, HostId(0), 1500);
        assert!(t64.elmo_ratio() > t1500.elmo_ratio());
    }

    #[test]
    fn leaf_local_group_is_ideal() {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        let tree = GroupTree::new(&topo, [HostId(0), HostId(1)]);
        let cfg = EncoderConfig::with_budget(&layout, 325, 0);
        let mut sa = |_p: PodId| false;
        let mut la = |_l: LeafId| false;
        let enc = encode_group(&topo, &tree, &cfg, &mut sa, &mut la);
        let t = group_traffic(&topo, &layout, &tree, &enc, HostId(0), 1500);
        // Two links: sender host -> leaf -> receiver host. The only Elmo
        // cost over ideal is the tiny u-leaf header on the first link.
        assert_eq!(t.ideal, (OUTER + 1500) * 2);
        assert!(t.elmo_ratio() < 1.01);
        assert_eq!(t.unicast, 2 * (OUTER + 1500));
        let _ = &layout;
    }

    #[test]
    fn unicast_links_by_distance() {
        let topo = Clos::paper_example();
        assert_eq!(unicast_links(&topo, HostId(0), HostId(1)), 2);
        assert_eq!(unicast_links(&topo, HostId(0), HostId(9)), 4); // other leaf, same pod
        assert_eq!(unicast_links(&topo, HostId(0), HostId(42)), 6); // other pod
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0] {
            s.push(v);
        }
        assert_eq!(s.count, 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(Summary::new().mean(), 0.0);
    }

    #[test]
    fn affine_model_matches_per_payload_functions() {
        for (r, srules) in [(0, true), (2, false), (12, false)] {
            let (topo, layout, tree, enc) = setup(r, srules);
            let sender = HostId(0);
            let model = traffic_model(&topo, &layout, &tree, &enc, sender);
            assert_eq!(
                model.header_len as usize,
                header_bytes(&topo, &layout, &tree, &enc, sender)
            );
            for payload in [0u64, 64, 256, 512, 1500] {
                let t = model.eval(payload);
                assert_eq!(
                    t.elmo,
                    elmo_bytes(&topo, &layout, &tree, &enc, sender, payload)
                );
                assert_eq!(t.unicast, unicast_bytes(&topo, &tree, sender, payload));
                assert_eq!(t.overlay, overlay_bytes(&topo, &tree, sender, payload));
                assert_eq!(
                    t.ideal,
                    tree.ideal_link_count(&topo, sender) as u64 * (OUTER + payload)
                );
                assert_eq!(
                    t,
                    group_traffic(&topo, &layout, &tree, &enc, sender, payload)
                );
            }
        }
    }

    #[test]
    fn header_bytes_matches_direct_encoding() {
        let (topo, layout, tree, enc) = setup(0, true);
        let h = header_bytes(&topo, &layout, &tree, &enc, HostId(0));
        let direct = header_for_sender(
            &topo,
            &layout,
            &tree,
            &enc,
            HostId(0),
            &UpstreamCover::multipath(),
        );
        assert_eq!(h, direct.encode(&layout).len());
    }
}
