//! Failure-impact experiment (paper §5.1.3b).
//!
//! Install the workload's groups, fail one spine and (separately) one core,
//! and measure: the fraction of groups whose in-use paths traversed the
//! failed switch, the per-hypervisor update load from pushing new upstream
//! p-rules, and how many groups had to degrade to unicast. The paper
//! reports up to 12.3% of groups hit by a spine failure and up to 25.8% by
//! a core failure, with average (max) hypervisor updates of 176.9 (1712)
//! and 674.9 (1852).

use elmo_controller::{Controller, ControllerConfig, FailureImpact, GroupId, MemberRole};
use elmo_net::vxlan::Vni;
use elmo_topology::{Clos, CoreId, SpineId};
use elmo_workloads::{initial_roles, Role, Workload, WorkloadConfig};

/// Results for one failure scenario.
#[derive(Clone, Debug)]
pub struct FailureRow {
    pub scenario: String,
    pub affected_fraction: f64,
    pub mean_hv_updates: f64,
    pub max_hv_updates: u32,
    pub degraded_to_unicast: usize,
}

impl FailureRow {
    fn from_impact(scenario: &str, impact: &FailureImpact) -> FailureRow {
        FailureRow {
            scenario: scenario.to_string(),
            affected_fraction: impact.affected_fraction(),
            mean_hv_updates: impact.mean_updates_per_hypervisor(),
            max_hv_updates: impact.max_updates_per_hypervisor(),
            degraded_to_unicast: impact.degraded_to_unicast,
        }
    }
}

fn to_role(r: Role) -> MemberRole {
    match r {
        Role::Sender => MemberRole::Sender,
        Role::Receiver => MemberRole::Receiver,
        Role::Both => MemberRole::Both,
    }
}

/// Build a controller with the workload installed, fail spine 0 then (on a
/// fresh controller) core 0, and report both impacts.
pub fn run(topo: Clos, workload_cfg: WorkloadConfig) -> Vec<FailureRow> {
    let workload = Workload::generate(topo, workload_cfg);
    let roles = initial_roles(&workload, workload_cfg.seed);
    let build = || {
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
        for (gi, g) in workload.groups.iter().enumerate() {
            let tenant = &workload.tenants[g.tenant as usize];
            let members = g
                .members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (tenant.vms[vm as usize], to_role(r)));
            ctl.create_group(
                GroupId(gi as u64),
                Vni(g.tenant),
                std::net::Ipv4Addr::new(225, (gi >> 16) as u8, (gi >> 8) as u8, gi as u8),
                members,
            );
        }
        ctl
    };

    let mut rows = Vec::new();
    {
        let mut ctl = build();
        let impact = ctl.handle_spine_failure(SpineId(0));
        rows.push(FailureRow::from_impact("spine failure", &impact));
    }
    {
        let mut ctl = build();
        let impact = ctl.handle_core_failure(CoreId(0));
        rows.push(FailureRow::from_impact("core failure", &impact));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    fn rows() -> Vec<FailureRow> {
        let topo = Clos::scaled_fabric(6, 6, 8); // 288 hosts, 4 spine planes
        let cfg = WorkloadConfig {
            tenants: 30,
            total_groups: 300,
            host_vm_cap: 20,
            placement_p: 1,
            min_group_size: 5,
            dist: GroupSizeDist::Wve,
            seed: 13,
        };
        run(topo, cfg)
    }

    #[test]
    fn both_scenarios_report() {
        let rows = rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scenario, "spine failure");
        assert_eq!(rows[1].scenario, "core failure");
    }

    #[test]
    fn affected_fractions_are_plausible() {
        let rows = rows();
        for row in &rows {
            assert!(
                row.affected_fraction > 0.0 && row.affected_fraction < 0.8,
                "{}: {}",
                row.scenario,
                row.affected_fraction
            );
        }
        // Core failures hit more groups than a single spine failure (the
        // paper: 25.8% vs 12.3%): every multi-pod group hashing to the plane
        // is exposed, not just groups present in one pod.
        assert!(rows[1].affected_fraction > rows[0].affected_fraction);
    }

    #[test]
    fn affected_groups_drive_hypervisor_updates() {
        let rows = rows();
        for row in &rows {
            assert!(row.mean_hv_updates >= 1.0, "{}", row.scenario);
            assert!(row.max_hv_updates >= row.mean_hv_updates as u32);
        }
    }

    #[test]
    fn single_failure_rarely_partitions() {
        let rows = rows();
        // With 4 spine planes, one failed device leaves alternates: nothing
        // should degrade to unicast.
        assert_eq!(rows[0].degraded_to_unicast, 0);
        assert_eq!(rows[1].degraded_to_unicast, 0);
    }
}
