//! Plain-text table rendering for the `elmo-eval` CLI — aligned columns in
//! the style of the paper's tables, no external dependencies.

/// Render an aligned table: one header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// `12.3%`-style percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// `1.05x`-style ratio.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// `avg (max)` pair, the paper's Table 2 style.
pub fn avg_max(avg: f64, max: f64) -> String {
    format!("{avg:.1} ({max:.0})")
}

/// Thousands separators for counts.
pub fn count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["a".into(), "1234".into()],
            vec!["bbbb".into(), "1".into()],
        ];
        let t = table(&["col", "value"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("col"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset everywhere.
        let off = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find("1234").unwrap(), off);
        assert_eq!(lines[3].find('1').unwrap(), off);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(ratio(1.049), "1.05x");
        assert_eq!(avg_max(20.96, 46.0), "21.0 (46)");
        assert_eq!(count(1_000_000), "1,000,000");
        assert_eq!(count(114), "114");
        assert_eq!(count(27_648), "27,648");
    }
}
