//! # elmo-sim — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`sweep`] | Figures 4 & 5 (coverage, s-rules, traffic vs `R`), plus the §5.1.2 variants (Uniform sizes, limited `Fmax`, reduced headers) |
//! | [`table2`] | Table 2 — control-plane update load under churn |
//! | [`churn_exp`] | §5.1.3a churn replay: delta vs full re-encode, per-burst verification |
//! | [`failure_exp`] | §5.1.3b — spine/core failure blast radius |
//! | [`perf`] | Figure 7 (hypervisor encap throughput) and §5.1.3 controller latency |
//! | [`xpander_exp`] | §5.1.2 non-Clos (Xpander) feasibility |
//! | [`table3`] | Table 3 — related-work comparison |
//! | [`ablation`] | §3.1 design-decision ablation (D1 → D2 → D3 header sizes) |
//! | [`metrics`], [`baselines`] | traffic accounting and the ideal/unicast/overlay/Li-et-al. baselines |
//!
//! The `elmo-eval` binary drives all of these and prints paper-style rows;
//! see `EXPERIMENTS.md` at the workspace root for paper-vs-measured values.
#![forbid(unsafe_code)]

pub mod ablation;
pub mod baselines;
pub mod churn_exp;
pub mod failure_exp;
pub mod metrics;
pub mod obs;
pub mod perf;
pub mod report;
pub mod sweep;
pub mod table2;
pub mod table3;
pub mod temporal_exp;
pub mod timeline_exp;
pub mod trace_exp;
pub mod verify_exp;
pub mod xpander_exp;

pub use metrics::{group_traffic, traffic_model, GroupTraffic, Summary, TrafficModel};
pub use sweep::{SweepConfig, SweepResult, SweepRow};
