//! The `elmo-eval trace` experiment: trace one packet's causal copy tree
//! through the paper-example fabric, annotate every node with its match
//! source and the controller's stable rule-attribution id, and
//! cross-check the tree's host leaves against the receiver set predicted
//! by `elmo-verify`'s static walk *and* the replay's actual deliveries.
//!
//! The fixture is the same three-shape group set `--trace-pcap` uses
//! (same-leaf, same-pod, cross-pod on [`Clos::paper_example`]), so CI can
//! pin exact copy-tree node counts for a known group: the tree is a pure
//! function of (topology, encoding, sender) — no clocks, no randomness.

use std::net::Ipv4Addr;
use std::sync::Arc;

use elmo_controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo_dataplane::{
    dense_switch_ref, trace_node_label, Fabric, HypervisorSwitch, SenderFlow, SwitchConfig,
};
use elmo_obs::{CopyTree, HOST_NODE_BIT};
use elmo_topology::{Clos, HostId, LeafId, PodId, SwitchRef};

/// The fixture's group shapes, indexed by `GroupId - 1` (identical to
/// the `--trace-pcap` fixture in [`crate::obs::write_trace_pcap`]).
pub const FIXTURE_SHAPES: [&[u32]; 3] = [&[0, 1], &[0, 8, 13], &[0, 1, 42, 48, 57]];

/// Everything one traced injection produced.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// The annotated copy tree.
    pub tree: CopyTree,
    /// ASCII rendering of the tree.
    pub rendered: String,
    /// Host leaves of the tree, sorted.
    pub tree_hosts: Vec<u32>,
    /// Hosts the static walk predicts, sorted.
    pub walk_hosts: Vec<u32>,
    /// Hosts the replay actually delivered to, sorted.
    pub delivered_hosts: Vec<u32>,
    /// Whether all three host sets agree exactly.
    pub ok: bool,
}

impl TraceRun {
    /// Total tree nodes (switch hops + host deliveries + the root).
    pub fn nodes(&self) -> usize {
        self.tree.nodes.len()
    }
}

/// Trace one packet of fixture group `group` (1..=3) from `sender`
/// (defaults to the group's first member), returning the annotated tree
/// and the three-way host-set cross-check.
pub fn run(group: u64, sender: Option<u32>) -> Result<TraceRun, String> {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    let vni = elmo_net::vxlan::Vni(7);
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (gi, members) in FIXTURE_SHAPES.iter().enumerate() {
        let gid = GroupId(gi as u64 + 1);
        ctl.create_group(
            gid,
            vni,
            Ipv4Addr::new(225, 9, 9, gi as u8 + 1),
            members.iter().map(|&h| (HostId(h), MemberRole::Both)),
        );
        let state = ctl.group(gid).expect("created group");
        for (leaf, bm) in &state.enc.d_leaf.s_rules {
            fabric
                .leaf_mut(LeafId(*leaf))
                .install_srule(state.outer_addr, bm.clone())
                .map_err(|e| format!("leaf s-rule install: {e}"))?;
        }
        for (pod, bm) in &state.enc.d_spine.s_rules {
            fabric
                .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
                .map_err(|e| format!("spine s-rule install: {e}"))?;
        }
    }

    let gid = GroupId(group);
    let members = FIXTURE_SHAPES
        .get(group.wrapping_sub(1) as usize)
        .ok_or_else(|| {
            format!(
                "fixture groups are 1..={}, got {group}",
                FIXTURE_SHAPES.len()
            )
        })?;
    let sender = HostId(sender.unwrap_or(members[0]));
    if !members.contains(&sender.0) {
        return Err(format!(
            "host {} is not a member of fixture group {group} (members: {members:?})",
            sender.0
        ));
    }
    let state = ctl.group(gid).expect("fixture group exists");
    let header = ctl
        .header_for(gid, sender)
        .ok_or_else(|| format!("no header for sender {}", sender.0))?;
    let outer = state.outer_addr;
    let tenant_addr = state.tenant_addr;

    let mut hv = HypervisorSwitch::new(sender);
    hv.install_flow(
        vni,
        tenant_addr,
        SenderFlow::new(outer, vni, &header, ctl.layout(), vec![]),
    );
    let payload: Arc<[u8]> = format!("elmo trace g{group}").into_bytes().into();
    let mut pkts = hv.send_flight(vni, tenant_addr, &payload);
    if pkts.len() != 1 {
        return Err(format!(
            "sender flow produced {} packets, expected 1",
            pkts.len()
        ));
    }
    let pkt = pkts.remove(0);
    let probe = pkt.clone();

    // The traced injection. Tracing records edges only; deliveries are
    // bit-identical to an untraced run (pinned by tests/path_trace.rs).
    fabric.start_tree_trace();
    let deliveries = fabric.inject_flight(sender, pkt);
    let events = fabric.take_tree_trace();
    let mut tree = CopyTree::build(0, &events, |n| trace_node_label(&topo, n));

    // Offline rule attribution: match sources are recomputed against the
    // same installed state the replay used (the hot path records only
    // edges), via the switch's own resolution-order probe.
    let att = state.rule_attribution();
    tree.annotate(|n| {
        if n.node & HOST_NODE_BIT != 0 {
            return ("deliver".to_string(), String::new());
        }
        // A node id is (packet << 32) | raw node id, so the parent's raw
        // switch id is the low word of its node id.
        let parent_raw = n.parent.map(|p| (p & u32::MAX as u64) as u32);
        let mut downstream_probe = probe.clone();
        downstream_probe.popped = n.state;
        match dense_switch_ref(&topo, n.node) {
            SwitchRef::Leaf(l) => match parent_raw {
                // Root: the sender's leaf matched its u-leaf p-rule.
                None => ("p-rule".to_string(), att.u_leaf()),
                // Parent is a spine: downstream leaf resolution.
                Some(_) => {
                    let src = fabric.leaf(l).classify_downstream(&downstream_probe);
                    let rule = att.d_leaf_rule(l.0).unwrap_or("").to_string();
                    (src.label().to_string(), rule)
                }
            },
            SwitchRef::Spine(s) => {
                let from_leaf = parent_raw
                    .map(|p| matches!(dense_switch_ref(&topo, p), SwitchRef::Leaf(_)))
                    .unwrap_or(false);
                if from_leaf {
                    // Upstream direction: the u-spine p-rule.
                    ("p-rule".to_string(), att.u_spine())
                } else {
                    let src = fabric.spine(s).classify_downstream(&downstream_probe);
                    let pod = topo.pod_of_spine(s);
                    let rule = att.d_spine_rule(pod.0).unwrap_or("").to_string();
                    (src.label().to_string(), rule)
                }
            }
            SwitchRef::Core(c) => {
                let src = fabric.core(c).classify_downstream(&downstream_probe);
                (src.label().to_string(), att.core())
            }
        }
    });

    let tree_hosts = tree.leaf_hosts();
    let walk_hosts: Vec<u32> = elmo_verify::static_walk_deliveries(&ctl, &fabric, gid, sender)?
        .keys()
        .map(|h| h.0)
        .collect();
    let mut delivered_hosts: Vec<u32> = deliveries.iter().map(|(h, _)| h.0).collect();
    delivered_hosts.sort_unstable();
    delivered_hosts.dedup();
    let ok = tree_hosts == walk_hosts && tree_hosts == delivered_hosts;
    let rendered = tree.render();
    Ok(TraceRun {
        tree,
        rendered,
        tree_hosts,
        walk_hosts,
        delivered_hosts,
        ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_pod_tree_matches_walk_and_replay() {
        let run = run(3, None).expect("fixture traces");
        assert!(
            run.ok,
            "tree {:?} walk {:?} replay {:?}",
            run.tree_hosts, run.walk_hosts, run.delivered_hosts
        );
        // Sender 0's copies reach every other member of {0,1,42,48,57}.
        assert_eq!(run.tree_hosts, vec![1, 42, 48, 57]);
        // Root + at least one hop per delivery.
        assert!(run.nodes() > run.tree_hosts.len());
        // Every node carries an attribution after annotation.
        for n in &run.tree.nodes {
            assert!(!n.matched.is_empty(), "unannotated node {n:?}");
        }
    }

    #[test]
    fn same_leaf_group_stays_under_one_leaf() {
        let run = run(1, None).expect("fixture traces");
        assert!(run.ok);
        assert_eq!(run.tree_hosts, vec![1]);
        // Same-leaf: root leaf + one host delivery, nothing upstream.
        assert_eq!(run.nodes(), 2);
    }

    #[test]
    fn non_member_sender_is_rejected() {
        assert!(run(3, Some(999)).is_err());
        assert!(run(9, None).is_err());
    }

    #[test]
    fn tree_json_round_trips() {
        let run = run(2, None).expect("fixture traces");
        let json = run.tree.to_json();
        let back = CopyTree::from_json(&json).expect("parses");
        assert_eq!(back, run.tree);
    }
}
