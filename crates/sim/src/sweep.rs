//! The core scalability sweep behind Figures 4 and 5 (and the §5.1.2
//! variants: Uniform sizes, limited s-rule capacity, reduced headers).
//!
//! For each redundancy limit `R`, every group in the workload is encoded
//! with Algorithm 1 against a fresh fabric-wide s-rule budget, and three
//! families of metrics are collected:
//!
//! * **coverage** — groups represented purely by non-default p-rules
//!   (left panels);
//! * **s-rule occupancy** — per-leaf and per-spine group-table entries,
//!   with the Li et al. baseline for the dashed line (center panels);
//! * **traffic overhead** — total bytes over ideal multicast, with unicast
//!   and overlay baselines (right panels), for each payload size.

use elmo_controller::batch::{self, SRuleReq};
use elmo_controller::srules::{SRuleSpace, UsageStats};
use elmo_core::HeaderLayout;
use elmo_core::{CacheOutcome, CacheShard, EncodeCache};
use elmo_core::{EncodeScratch, EncoderConfig, GroupEncoding};
use elmo_topology::{Clos, GroupTree, HostId};
use elmo_workloads::{Workload, WorkloadConfig};

use crate::baselines;
use crate::metrics::{self, GroupTraffic, Summary};

/// Sweep metrics. `groups_encoded` is recorded inside parallel workers
/// (commutative); everything else from the sequential fold. The
/// `header_bytes` histogram is the per-sender header-size distribution of
/// Figures 4/5 (left panels) as a live metric. The cache counters share
/// their names with the controller batch pipeline: both paths feed the one
/// declared `encode.cache_hit` / `encode.cache_miss` contract.
struct SweepMetrics {
    groups_encoded: elmo_obs::Counter,
    reencoded: elmo_obs::Counter,
    cache_hit: elmo_obs::Counter,
    cache_miss: elmo_obs::Counter,
    header_bytes: elmo_obs::Histogram,
}

fn ometrics() -> &'static SweepMetrics {
    static M: std::sync::OnceLock<SweepMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| SweepMetrics {
        groups_encoded: elmo_obs::counter("sim.sweep.groups_encoded"),
        reencoded: elmo_obs::counter("sim.sweep.reencoded"),
        cache_hit: elmo_obs::counter("encode.cache_hit"),
        cache_miss: elmo_obs::counter("encode.cache_miss"),
        header_bytes: elmo_obs::histogram("sim.sweep.header_bytes"),
    })
}

/// Groups evaluated per two-phase round. Bounds how many trees, encodings,
/// and recorded s-rule requests are resident at once, so million-group
/// workloads stream through the parallel pipeline in constant memory.
const CHUNK: usize = 4096;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    pub topo: Clos,
    pub workload: WorkloadConfig,
    /// Redundancy limits to evaluate (the x-axis).
    pub r_values: Vec<usize>,
    /// Per-leaf group-table capacity.
    pub leaf_fmax: usize,
    /// Per-spine group-table capacity.
    pub spine_fmax: usize,
    /// Header budget in bytes.
    pub header_budget: usize,
    /// Payload sizes to report traffic overhead for.
    pub payloads: Vec<u64>,
    /// Worker threads for group encoding (0 = all available cores). Results
    /// are identical at any thread count; see `elmo_controller::batch`.
    pub threads: usize,
    /// Memoize structural clustering decisions across groups (and across
    /// the R sweep) via [`EncodeCache`]. Rows are bit-identical either way;
    /// the cache only changes how fast the optimistic phase runs.
    pub cache: bool,
}

impl SweepConfig {
    /// The Figure 4/5 configuration on a given fabric: WVE sizes, unlimited
    /// group tables, 325-byte headers, 1,500-byte and 64-byte payloads.
    pub fn paper(topo: Clos, workload: WorkloadConfig) -> Self {
        SweepConfig {
            topo,
            workload,
            r_values: vec![0, 2, 4, 6, 8, 10, 12],
            leaf_fmax: usize::MAX,
            spine_fmax: usize::MAX,
            header_budget: 325,
            payloads: vec![1500, 64],
            threads: 1,
            cache: true,
        }
    }
}

/// Traffic overhead aggregates for one payload size.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TrafficRow {
    pub payload: u64,
    /// Total-bytes ratios against ideal multicast.
    pub elmo_ratio: f64,
    pub unicast_ratio: f64,
    pub overlay_ratio: f64,
}

/// Results for one redundancy limit.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepRow {
    pub r: usize,
    pub total_groups: usize,
    /// Groups encoded without s-rules or default p-rules.
    pub covered: usize,
    /// Groups that needed a default p-rule somewhere.
    pub defaulted: usize,
    /// s-rule occupancy per leaf switch.
    pub leaf_srules: UsageStats,
    /// s-rule occupancy per spine switch.
    pub spine_srules: UsageStats,
    /// Per-sender header bytes across groups.
    pub header_bytes: Summary,
    /// Traffic ratios per payload size.
    pub traffic: Vec<TrafficRow>,
}

/// Results of the whole sweep plus the Li et al. baseline (R-independent).
#[derive(Clone, PartialEq, Debug)]
pub struct SweepResult {
    pub rows: Vec<SweepRow>,
    pub li_leaf: UsageStats,
    pub li_spine: UsageStats,
    pub li_core: UsageStats,
}

/// Phase-1 output for one group: everything the sequential fold needs,
/// computed on a worker thread under the optimistic-capacity assumption.
struct GroupEval {
    tree: GroupTree,
    sender: HostId,
    enc: GroupEncoding,
    reqs: Vec<SRuleReq>,
    /// Cache outcomes (in layer order) for deterministic phase-2 absorption.
    cache: Vec<CacheOutcome>,
    header_bytes: f64,
    /// One entry per configured payload size.
    traffic: Vec<GroupTraffic>,
}

/// Per-worker scratch: encode scratch, recorded s-rule requests, the
/// worker-local cache shard, and the per-group cache outcomes.
type WorkerState = (EncodeScratch, Vec<SRuleReq>, CacheShard, Vec<CacheOutcome>);

/// Measure one encoding: per-sender header bytes plus one traffic row per
/// payload size. One fabric walk total — [`metrics::traffic_model`] captures
/// the payload-independent constants and each payload row is derived
/// arithmetically. Shared by the optimistic phase-1 path and the
/// capacity-constrained re-encode in [`RowAccum::fold`].
fn measure(
    topo: &Clos,
    layout: &HeaderLayout,
    payloads: &[u64],
    tree: &GroupTree,
    enc: &GroupEncoding,
    sender: HostId,
) -> (f64, Vec<GroupTraffic>) {
    let model = metrics::traffic_model(topo, layout, tree, enc, sender);
    let traffic = payloads.iter().map(|&p| model.eval(p)).collect();
    (model.header_len as f64, traffic)
}

#[allow(clippy::too_many_arguments)]
fn eval_group(
    topo: &Clos,
    layout: &HeaderLayout,
    encoder: &EncoderConfig,
    payloads: &[u64],
    base: Option<&EncodeCache>,
    tree: GroupTree,
    sender: HostId,
    ws: &mut WorkerState,
) -> GroupEval {
    let (scratch, reqs, shard, outcomes) = ws;
    let enc = match base {
        Some(base) => batch::encode_group_optimistic_cached(
            topo, &tree, encoder, scratch, base, shard, outcomes, reqs,
        ),
        None => batch::encode_group_optimistic(topo, &tree, encoder, scratch, reqs),
    };
    let (header_bytes, traffic) = measure(topo, layout, payloads, &tree, &enc, sender);
    GroupEval {
        tree,
        sender,
        enc,
        reqs: std::mem::take(reqs),
        cache: std::mem::take(outcomes),
        header_bytes,
        traffic,
    }
}

/// Per-R accumulators folded strictly in group order, so float summaries are
/// bit-identical at every thread count.
struct RowAccum {
    srules: SRuleSpace,
    covered: usize,
    defaulted: usize,
    header_bytes: Summary,
    elmo_sum: Vec<u64>,
    ideal_sum: Vec<u64>,
    unicast_sum: Vec<u64>,
    overlay_sum: Vec<u64>,
    scratch: EncodeScratch,
}

impl RowAccum {
    fn new(topo: &Clos, cfg: &SweepConfig) -> Self {
        RowAccum {
            srules: SRuleSpace::new(topo, cfg.leaf_fmax, cfg.spine_fmax),
            covered: 0,
            defaulted: 0,
            header_bytes: Summary::new(),
            elmo_sum: vec![0; cfg.payloads.len()],
            ideal_sum: vec![0; cfg.payloads.len()],
            unicast_sum: vec![0; cfg.payloads.len()],
            overlay_sum: vec![0; cfg.payloads.len()],
            scratch: EncodeScratch::new(),
        }
    }

    /// Phase 2 for one group: absorb its cache outcomes (group order keeps
    /// hit/miss counts thread-count-independent), then admit its optimistic
    /// reservations, or re-encode it serially against the live tracker
    /// (serial semantics: allocations that succeed before a refusal stick).
    fn fold(
        &mut self,
        topo: &Clos,
        layout: &HeaderLayout,
        encoder: &EncoderConfig,
        payloads: &[u64],
        cache: Option<&mut EncodeCache>,
        mut ev: GroupEval,
    ) {
        if let Some(cache) = cache {
            let (hits, misses) = cache.absorb(std::mem::take(&mut ev.cache));
            ometrics().cache_hit.add(hits);
            ometrics().cache_miss.add(misses);
        }
        if !batch::try_admit(&mut self.srules, &ev.reqs) {
            ometrics().reencoded.inc();
            ev.enc = batch::encode_group_admitted(
                topo,
                &ev.tree,
                encoder,
                &mut self.srules,
                &mut self.scratch,
            );
            let (hb, traffic) = measure(topo, layout, payloads, &ev.tree, &ev.enc, ev.sender);
            ev.header_bytes = hb;
            ev.traffic = traffic;
        }
        if ev.enc.leaf_covered_by_p_rules() {
            self.covered += 1;
        }
        if ev.enc.d_leaf.default_rule.is_some() || ev.enc.d_spine.default_rule.is_some() {
            self.defaulted += 1;
        }
        self.header_bytes.push(ev.header_bytes);
        ometrics().header_bytes.record(ev.header_bytes as u64);
        for (pi, t) in ev.traffic.iter().enumerate() {
            self.elmo_sum[pi] += t.elmo;
            self.ideal_sum[pi] += t.ideal;
            self.unicast_sum[pi] += t.unicast;
            self.overlay_sum[pi] += t.overlay;
        }
    }

    fn into_row(self, topo: &Clos, cfg: &SweepConfig, r: usize, total_groups: usize) -> SweepRow {
        let traffic = cfg
            .payloads
            .iter()
            .enumerate()
            .map(|(pi, &payload)| TrafficRow {
                payload,
                elmo_ratio: self.elmo_sum[pi] as f64 / self.ideal_sum[pi] as f64,
                unicast_ratio: self.unicast_sum[pi] as f64 / self.ideal_sum[pi] as f64,
                overlay_ratio: self.overlay_sum[pi] as f64 / self.ideal_sum[pi] as f64,
            })
            .collect();
        // Spine occupancy is per physical spine: every spine of a pod holds
        // the pod's s-rules.
        let spine_usage: Vec<usize> = topo
            .spines()
            .map(|s| self.srules.pod_usage(topo.pod_of_spine(s)))
            .collect();
        SweepRow {
            r,
            total_groups,
            covered: self.covered,
            defaulted: self.defaulted,
            leaf_srules: UsageStats::of(self.srules.leaf_usages()),
            spine_srules: UsageStats::of(&spine_usage),
            header_bytes: self.header_bytes,
            traffic,
        }
    }
}

/// Run the sweep. Group encoding fans out over `cfg.threads` workers via the
/// two-phase pipeline in [`elmo_controller::batch`]; every result — s-rule
/// occupancy, coverage counts, float traffic summaries — is bit-identical to
/// the single-threaded run because admission and metric folding happen
/// sequentially in group order. With `cfg.cache` set, structural clustering
/// decisions are memoized across groups and R-values ([`EncodeCache`]) —
/// rows are still bit-identical to the uncached run.
pub fn run(cfg: &SweepConfig) -> SweepResult {
    if cfg.cache {
        run_with_cache(cfg, &mut EncodeCache::new())
    } else {
        run_impl(cfg, None)
    }
}

/// Run the sweep against a caller-owned [`EncodeCache`], which warms across
/// calls: rerunning the same workload against a warmed cache hits on every
/// group. Used by the bench harness to time warm vs cold encoding.
pub fn run_with_cache(cfg: &SweepConfig, cache: &mut EncodeCache) -> SweepResult {
    run_impl(cfg, Some(cache))
}

fn run_impl(cfg: &SweepConfig, mut cache: Option<&mut EncodeCache>) -> SweepResult {
    let topo = cfg.topo;
    let layout = HeaderLayout::for_clos(&topo);
    let threads = elmo_core::resolve_threads(cfg.threads);
    let workload = Workload::generate(topo, cfg.workload);

    // Li et al. baseline over the same workload (independent of R). Tree
    // construction and tree hashing parallelize per chunk; the usage counts
    // are folded in group order (they are integer counters, so order does
    // not matter for the result, only for reproducible iteration).
    let mut li_usage = baselines::LiUsage {
        leaf: vec![0; topo.num_leaves()],
        spine: vec![0; topo.num_spines()],
        core: vec![0; topo.num_cores()],
    };
    for (chunk_idx, chunk) in workload.groups.chunks(CHUNK).enumerate() {
        let base = chunk_idx * CHUNK;
        let trees = elmo_core::parallel_map(chunk.len(), threads, |i| {
            let tree = GroupTree::new(&topo, workload.member_hosts(&chunk[i]));
            baselines::li_tree(&topo, &tree, (base + i) as u64)
        });
        for lt in trees {
            for l in lt.leaves {
                li_usage.leaf[l as usize] += 1;
            }
            for s in lt.spines {
                li_usage.spine[s as usize] += 1;
            }
            if let Some(c) = lt.core {
                li_usage.core[c as usize] += 1;
            }
        }
    }

    let mut rows = Vec::with_capacity(cfg.r_values.len());
    for &r in &cfg.r_values {
        let _row_span = elmo_obs::span!("sweep_row");
        let encoder = {
            let mut e = EncoderConfig::with_budget(&layout, cfg.header_budget, r);
            e.mode = elmo_core::RedundancyMode::Sum;
            e
        };
        let mut acc = RowAccum::new(&topo, cfg);
        for chunk in workload.groups.chunks(CHUNK) {
            // Phase 1 (parallel): tree + optimistic encode + metrics.
            // Workers see a frozen view of the cache; fresh entries ride
            // back in each group's outcomes.
            let evals = {
                let _span = elmo_obs::span!("sweep_phase1");
                let base = cache.as_deref();
                elmo_core::parallel_map_with(
                    chunk.len(),
                    threads,
                    || {
                        (
                            EncodeScratch::new(),
                            Vec::new(),
                            CacheShard::default(),
                            Vec::new(),
                        )
                    },
                    |ws, i| {
                        let hosts = workload.member_hosts(&chunk[i]);
                        let tree = GroupTree::new(&topo, hosts.iter().copied());
                        if tree.is_empty() {
                            return None;
                        }
                        ometrics().groups_encoded.inc();
                        let sender = hosts[0];
                        Some(eval_group(
                            &topo,
                            &layout,
                            &encoder,
                            &cfg.payloads,
                            base,
                            tree,
                            sender,
                            ws,
                        ))
                    },
                )
            };
            // Phase 2 (sequential, group order): cache absorption +
            // admission + metric fold.
            let _span = elmo_obs::span!("sweep_fold");
            for ev in evals.into_iter().flatten() {
                acc.fold(
                    &topo,
                    &layout,
                    &encoder,
                    &cfg.payloads,
                    cache.as_deref_mut(),
                    ev,
                );
            }
        }
        let row = acc.into_row(&topo, cfg, r, workload.groups.len());
        elmo_obs::debug!(
            "sweep.row",
            r = row.r,
            covered = row.covered,
            defaulted = row.defaulted,
            groups = row.total_groups,
        );
        rows.push(row);
    }

    SweepResult {
        rows,
        li_leaf: UsageStats::of(&li_usage.leaf),
        li_spine: UsageStats::of(&li_usage.spine),
        li_core: UsageStats::of(&li_usage.core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    fn small_sweep(p: usize, dist: GroupSizeDist) -> SweepResult {
        let topo = Clos::scaled_fabric(4, 8, 8); // 256 hosts
        let workload = WorkloadConfig {
            tenants: 30,
            total_groups: 400,
            host_vm_cap: 20,
            placement_p: p,
            min_group_size: 5,
            dist,
            seed: 21,
        };
        let mut cfg = SweepConfig::paper(topo, workload);
        cfg.r_values = vec![0, 6, 12];
        run(&cfg)
    }

    #[test]
    fn coverage_increases_with_r() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        let covered: Vec<usize> = result.rows.iter().map(|r| r.covered).collect();
        assert!(
            covered[0] <= covered[1] && covered[1] <= covered[2],
            "{covered:?}"
        );
        assert!(covered[2] > 0);
    }

    #[test]
    fn srule_usage_decreases_with_r() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        let means: Vec<f64> = result.rows.iter().map(|r| r.leaf_srules.mean).collect();
        assert!(means[0] >= means[2], "{means:?}");
    }

    #[test]
    fn traffic_overhead_grows_with_r_but_stays_below_baselines() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        for row in &result.rows {
            let t1500 = row.traffic.iter().find(|t| t.payload == 1500).unwrap();
            assert!(t1500.elmo_ratio >= 1.0);
            assert!(t1500.elmo_ratio < t1500.overlay_ratio, "r={}", row.r);
            assert!(t1500.overlay_ratio < t1500.unicast_ratio);
            let t64 = row.traffic.iter().find(|t| t.payload == 64).unwrap();
            assert!(t64.elmo_ratio > t1500.elmo_ratio, "small packets hurt more");
        }
    }

    #[test]
    fn li_baseline_exceeds_elmo_srule_usage() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        // Elmo at R=12 should use far less leaf group-table state than the
        // Li et al. baseline (Figures 4/5 center).
        let elmo = result.rows.last().unwrap().leaf_srules.mean;
        assert!(
            result.li_leaf.mean > elmo.max(0.5),
            "li {} vs elmo {}",
            result.li_leaf.mean,
            elmo
        );
    }

    #[test]
    fn dispersed_placement_spreads_state_wider() {
        let p12 = small_sweep(12, GroupSizeDist::Wve);
        let p1 = small_sweep(1, GroupSizeDist::Wve);
        // Dispersed placement puts groups on more leaves, so any scheme
        // paying per-member-leaf state (Li et al.: one group-table entry per
        // member leaf per group) needs substantially more of it — the
        // effect behind Figure 5 vs Figure 4.
        assert!(
            p1.li_leaf.mean > p12.li_leaf.mean,
            "p1 {} <= p12 {}",
            p1.li_leaf.mean,
            p12.li_leaf.mean
        );
    }

    #[test]
    fn headers_respect_the_budget() {
        let result = small_sweep(1, GroupSizeDist::Uniform);
        for row in &result.rows {
            assert!(
                row.header_bytes.max <= 325.0,
                "r={} max={}",
                row.r,
                row.header_bytes.max
            );
            assert!(row.header_bytes.min >= 1.0);
        }
    }
}
