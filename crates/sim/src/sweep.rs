//! The core scalability sweep behind Figures 4 and 5 (and the §5.1.2
//! variants: Uniform sizes, limited s-rule capacity, reduced headers).
//!
//! For each redundancy limit `R`, every group in the workload is encoded
//! with Algorithm 1 against a fresh fabric-wide s-rule budget, and three
//! families of metrics are collected:
//!
//! * **coverage** — groups represented purely by non-default p-rules
//!   (left panels);
//! * **s-rule occupancy** — per-leaf and per-spine group-table entries,
//!   with the Li et al. baseline for the dashed line (center panels);
//! * **traffic overhead** — total bytes over ideal multicast, with unicast
//!   and overlay baselines (right panels), for each payload size.

use elmo_controller::srules::{SRuleSpace, UsageStats};
use elmo_core::EncoderConfig;
use elmo_core::HeaderLayout;
use elmo_topology::{Clos, GroupTree, LeafId, PodId};
use elmo_workloads::{Workload, WorkloadConfig};

use crate::baselines;
use crate::metrics::{self, Summary};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    pub topo: Clos,
    pub workload: WorkloadConfig,
    /// Redundancy limits to evaluate (the x-axis).
    pub r_values: Vec<usize>,
    /// Per-leaf group-table capacity.
    pub leaf_fmax: usize,
    /// Per-spine group-table capacity.
    pub spine_fmax: usize,
    /// Header budget in bytes.
    pub header_budget: usize,
    /// Payload sizes to report traffic overhead for.
    pub payloads: Vec<u64>,
}

impl SweepConfig {
    /// The Figure 4/5 configuration on a given fabric: WVE sizes, unlimited
    /// group tables, 325-byte headers, 1,500-byte and 64-byte payloads.
    pub fn paper(topo: Clos, workload: WorkloadConfig) -> Self {
        SweepConfig {
            topo,
            workload,
            r_values: vec![0, 2, 4, 6, 8, 10, 12],
            leaf_fmax: usize::MAX,
            spine_fmax: usize::MAX,
            header_budget: 325,
            payloads: vec![1500, 64],
        }
    }
}

/// Traffic overhead aggregates for one payload size.
#[derive(Clone, Copy, Debug)]
pub struct TrafficRow {
    pub payload: u64,
    /// Total-bytes ratios against ideal multicast.
    pub elmo_ratio: f64,
    pub unicast_ratio: f64,
    pub overlay_ratio: f64,
}

/// Results for one redundancy limit.
#[derive(Clone, Debug)]
pub struct SweepRow {
    pub r: usize,
    pub total_groups: usize,
    /// Groups encoded without s-rules or default p-rules.
    pub covered: usize,
    /// Groups that needed a default p-rule somewhere.
    pub defaulted: usize,
    /// s-rule occupancy per leaf switch.
    pub leaf_srules: UsageStats,
    /// s-rule occupancy per spine switch.
    pub spine_srules: UsageStats,
    /// Per-sender header bytes across groups.
    pub header_bytes: Summary,
    /// Traffic ratios per payload size.
    pub traffic: Vec<TrafficRow>,
}

/// Results of the whole sweep plus the Li et al. baseline (R-independent).
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub rows: Vec<SweepRow>,
    pub li_leaf: UsageStats,
    pub li_spine: UsageStats,
    pub li_core: UsageStats,
}

/// Run the sweep.
pub fn run(cfg: &SweepConfig) -> SweepResult {
    let topo = cfg.topo;
    let layout = HeaderLayout::for_clos(&topo);
    let workload = Workload::generate(topo, cfg.workload);

    // Li et al. baseline over the same workload (independent of R),
    // accumulated streamingly so trees are never all resident at once.
    let mut li_usage = baselines::LiUsage {
        leaf: vec![0; topo.num_leaves()],
        spine: vec![0; topo.num_spines()],
        core: vec![0; topo.num_cores()],
    };
    for (i, g) in workload.groups.iter().enumerate() {
        let tree = GroupTree::new(&topo, workload.member_hosts(g));
        let lt = baselines::li_tree(&topo, &tree, i as u64);
        for l in lt.leaves {
            li_usage.leaf[l as usize] += 1;
        }
        for s in lt.spines {
            li_usage.spine[s as usize] += 1;
        }
        if let Some(c) = lt.core {
            li_usage.core[c as usize] += 1;
        }
    }

    let mut rows = Vec::with_capacity(cfg.r_values.len());
    for &r in &cfg.r_values {
        let encoder = {
            let mut e = EncoderConfig::with_budget(&layout, cfg.header_budget, r);
            e.mode = elmo_core::RedundancyMode::Sum;
            e
        };
        let mut srules = SRuleSpace::new(&topo, cfg.leaf_fmax, cfg.spine_fmax);
        let mut covered = 0usize;
        let mut defaulted = 0usize;
        let mut header_bytes = Summary::new();
        let mut elmo_sum = vec![0u64; cfg.payloads.len()];
        let mut ideal_sum = vec![0u64; cfg.payloads.len()];
        let mut unicast_sum = vec![0u64; cfg.payloads.len()];
        let mut overlay_sum = vec![0u64; cfg.payloads.len()];

        for g in &workload.groups {
            let hosts = workload.member_hosts(g);
            let tree = GroupTree::new(&topo, hosts.iter().copied());
            if tree.is_empty() {
                continue;
            }
            let enc = {
                let cell = std::cell::RefCell::new(&mut srules);
                let mut sa = |p: PodId| cell.borrow_mut().alloc_pod(p);
                let mut la = |l: LeafId| cell.borrow_mut().alloc_leaf(l);
                elmo_core::encode_group(&topo, &tree, &encoder, &mut sa, &mut la)
            };
            if enc.leaf_covered_by_p_rules() {
                covered += 1;
            }
            if enc.d_leaf.default_rule.is_some() || enc.d_spine.default_rule.is_some() {
                defaulted += 1;
            }
            let sender = hosts[0];
            header_bytes.push(metrics::header_bytes(&topo, &layout, &tree, &enc, sender) as f64);
            for (pi, &payload) in cfg.payloads.iter().enumerate() {
                let t = metrics::group_traffic(&topo, &layout, &tree, &enc, sender, payload);
                elmo_sum[pi] += t.elmo;
                ideal_sum[pi] += t.ideal;
                unicast_sum[pi] += t.unicast;
                overlay_sum[pi] += t.overlay;
            }
        }

        let traffic = cfg
            .payloads
            .iter()
            .enumerate()
            .map(|(pi, &payload)| TrafficRow {
                payload,
                elmo_ratio: elmo_sum[pi] as f64 / ideal_sum[pi] as f64,
                unicast_ratio: unicast_sum[pi] as f64 / ideal_sum[pi] as f64,
                overlay_ratio: overlay_sum[pi] as f64 / ideal_sum[pi] as f64,
            })
            .collect();

        // Spine occupancy is per physical spine: every spine of a pod holds
        // the pod's s-rules.
        let spine_usage: Vec<usize> = topo
            .spines()
            .map(|s| srules.pod_usage(topo.pod_of_spine(s)))
            .collect();
        rows.push(SweepRow {
            r,
            total_groups: workload.groups.len(),
            covered,
            defaulted,
            leaf_srules: UsageStats::of(srules.leaf_usages()),
            spine_srules: UsageStats::of(&spine_usage),
            header_bytes,
            traffic,
        });
    }

    SweepResult {
        rows,
        li_leaf: UsageStats::of(&li_usage.leaf),
        li_spine: UsageStats::of(&li_usage.spine),
        li_core: UsageStats::of(&li_usage.core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    fn small_sweep(p: usize, dist: GroupSizeDist) -> SweepResult {
        let topo = Clos::scaled_fabric(4, 8, 8); // 256 hosts
        let workload = WorkloadConfig {
            tenants: 30,
            total_groups: 400,
            host_vm_cap: 20,
            placement_p: p,
            min_group_size: 5,
            dist,
            seed: 21,
        };
        let mut cfg = SweepConfig::paper(topo, workload);
        cfg.r_values = vec![0, 6, 12];
        run(&cfg)
    }

    #[test]
    fn coverage_increases_with_r() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        let covered: Vec<usize> = result.rows.iter().map(|r| r.covered).collect();
        assert!(
            covered[0] <= covered[1] && covered[1] <= covered[2],
            "{covered:?}"
        );
        assert!(covered[2] > 0);
    }

    #[test]
    fn srule_usage_decreases_with_r() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        let means: Vec<f64> = result.rows.iter().map(|r| r.leaf_srules.mean).collect();
        assert!(means[0] >= means[2], "{means:?}");
    }

    #[test]
    fn traffic_overhead_grows_with_r_but_stays_below_baselines() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        for row in &result.rows {
            let t1500 = row.traffic.iter().find(|t| t.payload == 1500).unwrap();
            assert!(t1500.elmo_ratio >= 1.0);
            assert!(t1500.elmo_ratio < t1500.overlay_ratio, "r={}", row.r);
            assert!(t1500.overlay_ratio < t1500.unicast_ratio);
            let t64 = row.traffic.iter().find(|t| t.payload == 64).unwrap();
            assert!(t64.elmo_ratio > t1500.elmo_ratio, "small packets hurt more");
        }
    }

    #[test]
    fn li_baseline_exceeds_elmo_srule_usage() {
        let result = small_sweep(12, GroupSizeDist::Wve);
        // Elmo at R=12 should use far less leaf group-table state than the
        // Li et al. baseline (Figures 4/5 center).
        let elmo = result.rows.last().unwrap().leaf_srules.mean;
        assert!(
            result.li_leaf.mean > elmo.max(0.5),
            "li {} vs elmo {}",
            result.li_leaf.mean,
            elmo
        );
    }

    #[test]
    fn dispersed_placement_spreads_state_wider() {
        let p12 = small_sweep(12, GroupSizeDist::Wve);
        let p1 = small_sweep(1, GroupSizeDist::Wve);
        // Dispersed placement puts groups on more leaves, so any scheme
        // paying per-member-leaf state (Li et al.: one group-table entry per
        // member leaf per group) needs substantially more of it — the
        // effect behind Figure 5 vs Figure 4.
        assert!(
            p1.li_leaf.mean > p12.li_leaf.mean,
            "p1 {} <= p12 {}",
            p1.li_leaf.mean,
            p12.li_leaf.mean
        );
    }

    #[test]
    fn headers_respect_the_budget() {
        let result = small_sweep(1, GroupSizeDist::Uniform);
        for row in &result.rows {
            assert!(
                row.header_bytes.max <= 325.0,
                "r={} max={}",
                row.r,
                row.header_bytes.max
            );
            assert!(row.header_bytes.min >= 1.0);
        }
    }
}
