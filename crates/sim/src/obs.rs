//! Sim-side observability glue: the declared-metric contract for exported
//! snapshots, and the `--trace-pcap` capture helper.
//!
//! [`REQUIRED_METRICS`] is the list CI validates: running any encode-path
//! experiment with `--metrics-out` must produce a snapshot containing every
//! name below. [`touch_all`] pre-registers them so a metric that happens to
//! record nothing in a given run still appears (as zero) instead of being
//! silently absent — absence then always means a broken exporter, not a
//! quiet code path.

use std::net::Ipv4Addr;

use elmo_controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo_dataplane::{Fabric, HypervisorSwitch, PcapWriter, SenderFlow, SwitchConfig, VmSlot};
use elmo_topology::{Clos, HostId};

/// Every metric name an exported snapshot must contain, with its paper-§5
/// counterpart documented in the workspace README's "Metrics" table.
pub const REQUIRED_METRICS: &[&str] = &[
    // Controller hot path (§5.1: encode + admission pipeline).
    "controller.groups_created",
    "controller.groups_deleted",
    "controller.batch.groups",
    "controller.batch.optimistic_encodes",
    "controller.batch.admitted",
    "controller.batch.reencoded",
    "controller.membership_changes",
    // Incremental churn engine (§5.1.3a: membership update handling).
    "churn.delta_hit",
    "churn.full_reencode",
    "churn.structural_escalations",
    // s-rule admission (§3.2/§5.1.2: group-table occupancy and spill).
    "controller.srules.leaf_allocs",
    "controller.srules.leaf_refused",
    "controller.srules.pod_allocs",
    "controller.srules.pod_refused",
    // Failure handling (§3.3/§5.1.3b).
    "controller.failures.spine",
    "controller.failures.core",
    "controller.failures.groups_rerouted",
    "controller.failures.degraded_to_unicast",
    "controller.failures.hypervisor_updates",
    // Data plane (§4.1: match source per forwarded packet).
    "dataplane.prule_hits",
    "dataplane.srule_hits",
    "dataplane.default_prule_sprays",
    "dataplane.header_pops",
    "dataplane.unicast_forwarded",
    "dataplane.dropped_no_rule",
    "dataplane.dropped_parse",
    "dataplane.dropped_header_vector",
    "dataplane.hv.sent_multicast",
    "dataplane.hv.sent_unicast",
    "dataplane.hv.delivered",
    "dataplane.hv.discarded",
    "dataplane.hv.no_flow",
    // Fabric link accounting (§5.1.2 traffic overhead, measured bytes).
    "fabric.packets_on_links",
    "fabric.host_to_leaf_bytes",
    "fabric.leaf_to_host_bytes",
    "fabric.leaf_to_spine_bytes",
    "fabric.spine_to_leaf_bytes",
    "fabric.spine_to_core_bytes",
    "fabric.core_to_spine_bytes",
    // Zero-copy replay loop health: scratch-buffer reuse vs growth, and
    // how many copies were actually serialized back to wire bytes (only
    // host deliveries and captures should be).
    "fabric.replay.buffer_reuse",
    "fabric.replay.fresh_alloc",
    "fabric.replay.materialized",
    // Compiled MatchPlan freshness: bumped on every s-rule install or
    // removal that recompiles a switch's plan. Zero after a churn delta
    // that touched group tables means a stale plan.
    "fabric.replay.plan_rebuilds",
    // Stale-plan detections on the replay hot path: a switch served a
    // packet while `plan.version != table_version`. Always-on (release
    // builds included); any nonzero value is a recompile-discipline bug.
    "fabric.replay.plan_stale_detected",
    "fabric.replay.shard.batches",
    "fabric.replay.shard.cross_msgs",
    "fabric.replay.trace_serial_fallback",
    // Copy-tree tracing and the windowed time-series (§7 monitoring
    // direction; `elmo-eval trace` / `timeline`).
    "trace.events_recorded",
    "trace.trees_built",
    "trace.flight_recorder.dumps",
    "timeline.windows_closed",
    "timeline.windows_evicted",
    // Encoding memoization (shared by the controller batch path and the
    // sweep; hit rate is the tenant-reuse signal the bench reports).
    "encode.cache_hit",
    "encode.cache_miss",
    // Sweep / workload (§5.1.1-2).
    "sim.sweep.groups_encoded",
    "sim.sweep.reencoded",
    "sim.table2.events",
    "sim.table2.device_updates",
    "workloads.groups_generated",
    // Applications (§5.2).
    "apps.pubsub.runs",
    "apps.telemetry.runs",
];

/// Histogram names the snapshot must also contain.
pub const REQUIRED_HISTOGRAMS: &[&str] = &["sim.sweep.header_bytes", "workloads.group_size"];

/// Pre-register every declared metric so it appears in a snapshot even
/// when its code path did not run.
pub fn touch_all() {
    for name in REQUIRED_METRICS {
        let _ = elmo_obs::counter(name);
    }
    for name in REQUIRED_HISTOGRAMS {
        let _ = elmo_obs::histogram(name);
    }
}

/// Validate a snapshot JSON document against the declared contract.
/// Returns the list of problems (empty = valid).
pub fn check_snapshot(json: &str) -> Vec<String> {
    let snap = match elmo_obs::Snapshot::from_json(json) {
        Ok(s) => s,
        Err(e) => return vec![format!("malformed snapshot JSON: {e}")],
    };
    let mut problems = Vec::new();
    for name in REQUIRED_METRICS {
        if snap.counter(name).is_none() {
            problems.push(format!("missing counter: {name}"));
        }
    }
    for name in REQUIRED_HISTOGRAMS {
        if snap.histogram(name).is_none() {
            problems.push(format!("missing histogram: {name}"));
        }
    }
    problems
}

/// Write the current metrics snapshot to `path` as pretty JSON.
pub fn write_snapshot(path: &str) -> std::io::Result<()> {
    touch_all();
    std::fs::write(path, elmo_obs::snapshot().to_json())
}

/// Encode a few representative groups on the paper-example fabric, drive
/// real packets through a [`Fabric`] with capture on, and write up to
/// `limit` on-the-wire copies to `path` as a classic pcap. This is the
/// `--trace-pcap` debug aid: the captured packets carry real Elmo headers
/// at every stage of popping, inspectable in Wireshark.
pub fn write_trace_pcap(path: &str, limit: usize) -> std::io::Result<usize> {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    let vni = elmo_net::vxlan::Vni(7);
    // Three groups of different shapes: same-leaf, same-pod, cross-pod.
    let shapes: [&[u32]; 3] = [&[0, 1], &[0, 8, 13], &[0, 1, 42, 48, 57]];
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    fabric.start_capture(limit);
    for (gi, members) in shapes.iter().enumerate() {
        let gid = GroupId(gi as u64 + 1);
        let tenant_addr = Ipv4Addr::new(225, 9, 9, gi as u8 + 1);
        ctl.create_group(
            gid,
            vni,
            tenant_addr,
            members.iter().map(|&h| (HostId(h), MemberRole::Both)),
        );
        let state = ctl.group(gid).expect("created group");
        for (leaf, bm) in &state.enc.d_leaf.s_rules {
            fabric
                .leaf_mut(elmo_topology::LeafId(*leaf))
                .install_srule(state.outer_addr, bm.clone())
                .expect("leaf group table");
        }
        for (pod, bm) in &state.enc.d_spine.s_rules {
            fabric
                .install_pod_srule(elmo_topology::PodId(*pod), state.outer_addr, bm.clone())
                .expect("spine group table");
        }
        let sender = HostId(members[0]);
        let header = ctl.header_for(gid, sender).expect("sender header");
        let mut hv = HypervisorSwitch::new(sender);
        hv.install_flow(
            vni,
            tenant_addr,
            SenderFlow::new(state.outer_addr, vni, &header, ctl.layout(), vec![]),
        );
        let mut hv_rx = HypervisorSwitch::new(HostId(members[1]));
        hv_rx.subscribe(state.outer_addr, VmSlot(0));
        let payload = format!("elmo trace group {gi}");
        for pkt in hv.send(vni, tenant_addr, payload.as_bytes(), ctl.layout()) {
            for (_host, bytes) in fabric.inject(sender, pkt) {
                // Deliveries also land in the capture via the fabric tap;
                // decap one to exercise the receive path.
                let _ = hv_rx.receive(&bytes, ctl.layout());
            }
        }
    }
    let captured = fabric.take_capture();
    let file = std::fs::File::create(path)?;
    let mut writer = PcapWriter::new(std::io::BufWriter::new(file))?;
    for pkt in &captured {
        writer.write_packet(pkt)?;
    }
    writer.finish()?;
    Ok(captured.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_snapshot_passes_its_own_check() {
        touch_all();
        let json = elmo_obs::snapshot().to_json();
        let problems = check_snapshot(&json);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn check_rejects_malformed_and_empty() {
        assert!(!check_snapshot("{not json").is_empty());
        assert!(
            !check_snapshot(r#"{"elmo_obs":1,"counters":{},"gauges":{},"histograms":{}}"#)
                .is_empty()
        );
    }

    #[test]
    fn trace_pcap_writes_a_valid_file() {
        let path = std::env::temp_dir().join("elmo_obs_trace_test.pcap");
        let path = path.to_str().unwrap();
        let n = write_trace_pcap(path, 64).expect("trace written");
        assert!(n > 0, "captured packets");
        let bytes = std::fs::read(path).expect("file exists");
        // Classic pcap magic, little-endian.
        assert_eq!(&bytes[..4], &[0xd4, 0xc3, 0xb2, 0xa1]);
        let _ = std::fs::remove_file(path);
    }
}
