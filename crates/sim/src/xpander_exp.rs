//! Non-Clos topology feasibility (paper §5.1.2, last paragraph).
//!
//! On an expander like Xpander there is no logical-switch aggregation to
//! exploit: a multicast tree is a BFS tree and every on-tree switch needs
//! its own p-rule (port bitmap + switch identifier). The paper claims a
//! symmetric Xpander with 48-port switches and degree 24 can still support
//! a million groups within the 325-byte header budget; this experiment
//! measures the header-size distribution and the fraction of groups that
//! fit.

use elmo_core::layout::id_bits;
use elmo_core::rng::SplitMix64;
use elmo_topology::xpander::Xpander;
use elmo_topology::HostId;
use elmo_workloads::{group_size, GroupSizeDist};

use crate::metrics::Summary;

/// Results of the Xpander feasibility sweep.
#[derive(Clone, Debug)]
pub struct XpanderResult {
    pub groups: usize,
    /// Header bytes per group (bitmap + id per on-tree switch, bit-packed).
    pub header_bytes: Summary,
    /// Fraction of groups whose header fits `budget_bytes`.
    pub fit_fraction: f64,
    pub budget_bytes: usize,
}

/// Encode `groups` WVE-sized groups on the Xpander and measure header sizes.
pub fn run(x: &Xpander, groups: usize, budget_bytes: usize, seed: u64) -> XpanderResult {
    let mut rng = SplitMix64::new(seed);
    let ports = x.ports_per_switch();
    let idb = id_bits(x.num_switches());
    let mut header_bytes = Summary::new();
    let mut fit = 0usize;
    let mut hosts: Vec<u32> = (0..x.num_hosts() as u32).collect();
    for _ in 0..groups {
        let size = group_size(&mut rng, GroupSizeDist::Wve, 5, 2_000);
        let (members, _) = rng.partial_shuffle(&mut hosts, size);
        let sender = HostId(members[0]);
        let root = x.switch_of_host(sender);
        let mut targets: Vec<usize> = members
            .iter()
            .map(|&h| x.switch_of_host(HostId(h)))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let tree = x.bfs_tree(root, &targets);
        // One p-rule per on-tree switch: port bitmap + id + next-rule flag.
        let bits: usize = 8 + tree.len() * (ports + idb + 1);
        let bytes = bits.div_ceil(8);
        header_bytes.push(bytes as f64);
        if bytes <= budget_bytes {
            fit += 1;
        }
    }
    XpanderResult {
        groups,
        header_bytes,
        fit_fraction: fit as f64 / groups as f64,
        budget_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_mostly_fits_the_budget() {
        let x = Xpander::paper_config();
        let r = run(&x, 400, 325, 3);
        // The paper: "Elmo can still support a million multicast groups with
        // a max header-size budget of 325 bytes". With a 60-bit rule per
        // on-tree switch a 325-byte header fits ~43 switches, so the ~80% of
        // WVE groups below 61 members mostly fit purely in p-rules; the tail
        // falls back to s-rules exactly as on the Clos fabric.
        assert!(r.fit_fraction > 0.7, "fit {}", r.fit_fraction);
        assert!(r.header_bytes.mean() < 325.0);
    }

    #[test]
    fn headers_grow_with_switch_count_on_tree() {
        let x = Xpander::new(6, 8, 4);
        let small = run(&x, 100, 325, 1);
        assert!(small.header_bytes.min >= 1.0);
        assert!(small.header_bytes.max >= small.header_bytes.min);
    }

    #[test]
    fn deterministic_in_seed() {
        let x = Xpander::new(6, 8, 4);
        let a = run(&x, 50, 325, 9);
        let b = run(&x, 50, 325, 9);
        assert_eq!(a.fit_fraction, b.fit_fraction);
        assert_eq!(a.header_bytes.sum, b.header_bytes.sum);
    }
}
