//! Temporal update-safety sweep: replay a seeded churn stream and prove
//! every intermediate fabric state safe for in-flight traffic.
//!
//! Drives [`elmo_verify::temporal`] over the same seeded join/leave
//! stream as [`crate::churn_exp`]: before each event the touched group's
//! epoch, senders, and exact delivery are snapshotted; after the
//! controller applies the event and the fabric's s-rules are synced, the
//! *pre-event* headers are re-walked. Every step must leave old headers
//! byte-exact, converged (header unchanged, delivery exactly the new
//! receiver set), or attributably versioned out — anything else is an
//! update-safety violation in the controller's patch path.
//!
//! The fabric is kept live across the whole stream and synced
//! *incrementally* (only the touched group's s-rules change per event),
//! both because that is what a deployment agent would do and because
//! rebuilding the full fabric per event would make a 10k-event sweep
//! quadratic.

use elmo_controller::{Controller, GroupId, GroupState};
use elmo_dataplane::Fabric;
use elmo_topology::{Clos, LeafId, PodId};
use elmo_verify::temporal::{check_update, EpochSnapshot, TemporalReport};
use elmo_workloads::{churn_bursts, initial_roles, Workload, WorkloadConfig};

use crate::churn_exp::{self, ChurnExpConfig};

/// Knobs for one temporal sweep.
#[derive(Clone, Copy, Debug)]
pub struct TemporalExpConfig {
    /// Redundancy limit `R` handed to the controller.
    pub r: usize,
    /// Controller header budget in bytes.
    pub header_budget: usize,
    /// Encoder worker threads for initial group creation (0 = all cores).
    pub threads: usize,
    /// Churn events to replay and check.
    pub events: usize,
    /// Events per generated burst (stream shaping only; every event is
    /// checked individually).
    pub burst: usize,
    /// Seed for the churn stream.
    pub seed: u64,
    /// Whether the controller's delta re-encode path is enabled.
    pub delta: bool,
    /// Sender headers sampled per event (0 = every sender of the group).
    pub max_senders: usize,
}

/// Everything one temporal sweep produced.
#[derive(Clone, Debug)]
pub struct TemporalRun {
    /// Groups in the generated workload.
    pub groups: usize,
    /// The aggregated safety report.
    pub report: TemporalReport,
}

/// Remove `old`'s installed s-rules for one group and install the
/// controller's current ones: the incremental per-event fabric sync a
/// deployment agent performs. A fallback or deleted group simply has its
/// old rules removed.
pub fn sync_group_rules(
    ctl: &Controller,
    fabric: &mut Fabric,
    gid: GroupId,
    old: Option<&GroupState>,
) {
    if let Some(old) = old {
        for (leaf, _) in &old.enc.d_leaf.s_rules {
            fabric.leaf_mut(LeafId(*leaf)).remove_srule(&old.outer_addr);
        }
        for (pod, _) in &old.enc.d_spine.s_rules {
            for s in ctl.topo().spines_in_pod(PodId(*pod)) {
                fabric.spine_mut(s).remove_srule(&old.outer_addr);
            }
        }
    }
    let state = match ctl.group(gid) {
        Some(s) if !s.unicast_fallback => s,
        _ => return,
    };
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .expect("uncapped leaf table");
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .expect("uncapped spine table");
    }
}

/// Generate the workload, build the controller, install the state, and
/// check every event of the seeded churn stream.
pub fn run(topo: Clos, workload_cfg: WorkloadConfig, cfg: &TemporalExpConfig) -> TemporalRun {
    let _span = elmo_obs::span!("temporal_exp_run");
    let workload = Workload::generate(topo, workload_cfg);
    let roles = initial_roles(&workload, workload_cfg.seed);
    let churn_cfg = ChurnExpConfig {
        r: cfg.r,
        header_budget: cfg.header_budget,
        threads: cfg.threads,
        events: cfg.events,
        burst: cfg.burst,
        seed: cfg.seed,
        delta: cfg.delta,
        verify_each_burst: false,
    };
    let mut ctl = churn_exp::build_controller(topo, &workload, &roles, &churn_cfg);
    let (mut fabric, _hvs) = crate::verify_exp::install_state(&ctl);

    // Ground truth roles per (group, vm), exactly as the churn replay
    // tracks them: leaves must replay the role the member holds.
    let mut truth: Vec<std::collections::BTreeMap<u32, elmo_workloads::Role>> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            g.members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (vm, r))
                .collect()
        })
        .collect();

    let mut report = TemporalReport::default();
    let mut idx = 0usize;
    for burst in churn_bursts(&workload, cfg.events, cfg.seed, cfg.burst) {
        for e in &burst {
            let gid = GroupId(e.group as u64);
            let g = &workload.groups[e.group as usize];
            let tenant = &workload.tenants[g.tenant as usize];
            let host = tenant.vms[e.vm as usize];
            let snap = EpochSnapshot::capture(&ctl, &fabric, gid, cfg.max_senders);
            let old = ctl.group(gid).cloned();
            let updates = if e.join {
                ctl.join(gid, host, churn_exp::to_role(e.role))
            } else {
                let old_role = truth[e.group as usize]
                    .get(&e.vm)
                    .copied()
                    .expect("generator only emits leaves for members");
                ctl.leave(gid, host, churn_exp::to_role(old_role))
            };
            sync_group_rules(&ctl, &mut fabric, gid, old.as_ref());
            report.events += 1;
            if let Some(snap) = snap {
                report.absorb(check_update(&snap, &ctl, &fabric, &updates, idx));
            }
            if e.join {
                truth[e.group as usize].insert(e.vm, e.role);
            } else {
                truth[e.group as usize].remove(&e.vm);
            }
            idx += 1;
        }
    }
    TemporalRun {
        groups: workload.groups.len(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    #[test]
    fn seeded_stream_is_temporally_safe() {
        let topo = Clos::paper_example();
        let wl = WorkloadConfig {
            tenants: 4,
            total_groups: 40,
            host_vm_cap: 20,
            placement_p: 12,
            min_group_size: 5,
            dist: GroupSizeDist::Wve,
            seed: 0xe1_40,
        };
        let cfg = TemporalExpConfig {
            r: 12,
            header_budget: 80,
            threads: 1,
            events: 400,
            burst: 50,
            seed: 0xe1_40,
            delta: true,
            max_senders: 2,
        };
        let run = run(topo, wl, &cfg);
        assert!(
            run.report.ok(),
            "temporal violations: {:#?}",
            run.report.violations
        );
        assert_eq!(run.report.events, 400);
        assert!(run.report.steps_checked > 0, "no step had live senders?");
        assert_eq!(
            run.report.exact + run.report.converged + run.report.versioned_out,
            run.report.senders_walked
        );
    }

    #[test]
    fn full_reencode_stream_is_temporally_safe_too() {
        // With the delta path off every event is a full re-encode that
        // frees and reinstalls s-rules; divergence is expected but must
        // always be versioned out, never silent.
        let topo = Clos::paper_example();
        let wl = WorkloadConfig {
            tenants: 3,
            total_groups: 24,
            host_vm_cap: 20,
            placement_p: 12,
            min_group_size: 5,
            dist: GroupSizeDist::Wve,
            seed: 0xe1_41,
        };
        let cfg = TemporalExpConfig {
            r: 12,
            header_budget: 80,
            threads: 1,
            events: 200,
            burst: 25,
            seed: 0xe1_41,
            delta: false,
            max_senders: 2,
        };
        let run = run(topo, wl, &cfg);
        assert!(
            run.report.ok(),
            "temporal violations: {:#?}",
            run.report.violations
        );
    }
}
