//! Control-plane update load under membership churn (paper Table 2).
//!
//! The workload's groups are installed in the controller with random
//! sender/receiver/both roles, then a stream of join/leave events (at a
//! notional 1,000 events per second) is replayed through
//! `Controller::join`/`leave`. Every event reports the exact set of
//! hypervisors, leaves, and spine pods that had to be reprogrammed; we
//! aggregate those into per-switch update rates and compare against the
//! Li et al. baseline, where every membership change reprograms every
//! switch on the group's tree.

use elmo_controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo_net::vxlan::Vni;
use elmo_topology::{Clos, GroupTree, HostId};
use elmo_workloads::{churn_events, initial_roles, Role, Workload, WorkloadConfig};

/// Update rates for one switch tier: `avg (max)` updates per second, where
/// the average is over switches that received at least one update (idle
/// switches would drown the average; the paper reports loads on switches
/// actually in play).
#[derive(Clone, Copy, Debug, Default)]
pub struct TierLoad {
    pub avg_per_sec: f64,
    pub max_per_sec: f64,
    /// Total updates across the tier over the whole run.
    pub total: u64,
}

impl TierLoad {
    fn from_counts(counts: impl Iterator<Item = u64>, duration_secs: f64) -> TierLoad {
        let mut total = 0u64;
        let mut active = 0u64;
        let mut max = 0u64;
        for c in counts {
            if c > 0 {
                total += c;
                active += 1;
                max = max.max(c);
            }
        }
        if active == 0 {
            return TierLoad::default();
        }
        TierLoad {
            avg_per_sec: total as f64 / active as f64 / duration_secs,
            max_per_sec: max as f64 / duration_secs,
            total,
        }
    }
}

/// Table 2: per-tier update loads for Elmo and the Li et al. baseline.
#[derive(Clone, Debug)]
pub struct Table2 {
    pub events: usize,
    pub events_per_sec: f64,
    pub hypervisor: TierLoad,
    pub leaf: TierLoad,
    pub spine: TierLoad,
    pub core: TierLoad,
    pub li_leaf: TierLoad,
    pub li_spine: TierLoad,
    pub li_core: TierLoad,
}

fn to_role(r: Role) -> MemberRole {
    match r {
        Role::Sender => MemberRole::Sender,
        Role::Receiver => MemberRole::Receiver,
        Role::Both => MemberRole::Both,
    }
}

/// Run the churn experiment: `events` membership changes at
/// `events_per_sec`. Group installation fans out over `threads` encode
/// workers (0 = all cores) through `Controller::create_groups_batch`; the
/// churn replay itself is inherently sequential (each event's update set
/// depends on all prior state).
pub fn run(
    topo: Clos,
    workload_cfg: WorkloadConfig,
    events: usize,
    events_per_sec: f64,
    threads: usize,
) -> Table2 {
    let _span = elmo_obs::span!("table2_run");
    let churn_updates = elmo_obs::counter("sim.table2.device_updates");
    let churn_events_ctr = elmo_obs::counter("sim.table2.events");
    let workload = Workload::generate(topo, workload_cfg);
    let roles = initial_roles(&workload, workload_cfg.seed);
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));

    // Install every group with its initial membership and roles.
    let specs: Vec<_> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let tenant = &workload.tenants[g.tenant as usize];
            let members: Vec<(HostId, MemberRole)> = g
                .members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (tenant.vms[vm as usize], to_role(r)))
                .collect();
            (
                GroupId(gi as u64),
                Vni(g.tenant),
                std::net::Ipv4Addr::new(225, (gi >> 16) as u8, (gi >> 8) as u8, gi as u8),
                members,
            )
        })
        .collect();
    ctl.create_groups_batch(&specs, threads);

    // Replay churn, accumulating per-device update counts.
    let stream = churn_events(&workload, events, workload_cfg.seed ^ 0xc4u64);
    let mut hv_counts: elmo_core::DetHashMap<HostId, u64> = Default::default();
    let mut leaf_counts = vec![0u64; topo.num_leaves()];
    let mut spine_counts = vec![0u64; topo.num_spines()];
    let core_counts = vec![0u64; topo.num_cores()]; // Elmo never updates cores
    let mut li_leaf = vec![0u64; topo.num_leaves()];
    let mut li_spine = vec![0u64; topo.num_spines()];
    let mut li_core = vec![0u64; topo.num_cores()];

    for e in &stream {
        let g = &workload.groups[e.group as usize];
        let host = workload.tenants[g.tenant as usize].vms[e.vm as usize];
        let role = to_role(e.role);
        churn_events_ctr.inc();
        let mut updates = if e.join {
            ctl.join(GroupId(e.group as u64), host, role)
        } else {
            ctl.leave(GroupId(e.group as u64), host, role)
        };
        // Expand symbolic all-sender markers: Table 2 counts per-device
        // update load, so every implied hypervisor must be explicit.
        if let Some(state) = ctl.group(GroupId(e.group as u64)) {
            updates.materialize_senders(state);
        }
        churn_updates.add(
            (updates.hypervisors.len() + updates.leaves.len() + updates.spine_pods.len()) as u64,
        );
        for h in &updates.hypervisors {
            *hv_counts.entry(*h).or_insert(0) += 1;
        }
        for l in &updates.leaves {
            leaf_counts[l.0 as usize] += 1;
        }
        for p in &updates.spine_pods {
            for s in topo.spines_in_pod(*p) {
                spine_counts[s.0 as usize] += 1;
            }
        }
        // Li et al.: every switch on the (possibly changed) tree updates on
        // any receiver-side membership change; sender-side changes touch the
        // ingress leaf.
        if role.receives() {
            if let Some(state) = ctl.group(GroupId(e.group as u64)) {
                let lt = crate::baselines::li_tree(&topo, &state.tree, e.group as u64);
                for l in lt.leaves {
                    li_leaf[l as usize] += 1;
                }
                for s in lt.spines {
                    li_spine[s as usize] += 1;
                }
                if let Some(c) = lt.core {
                    li_core[c as usize] += 1;
                }
            }
        } else {
            li_leaf[topo.leaf_of_host(host).0 as usize] += 1;
        }
    }

    let duration = events as f64 / events_per_sec;
    Table2 {
        events,
        events_per_sec,
        hypervisor: TierLoad::from_counts(hv_counts.values().copied(), duration),
        leaf: TierLoad::from_counts(leaf_counts.into_iter(), duration),
        spine: TierLoad::from_counts(spine_counts.into_iter(), duration),
        core: TierLoad::from_counts(core_counts.into_iter(), duration),
        li_leaf: TierLoad::from_counts(li_leaf.into_iter(), duration),
        li_spine: TierLoad::from_counts(li_spine.into_iter(), duration),
        li_core: TierLoad::from_counts(li_core.into_iter(), duration),
    }
}

/// Sanity helper used by tests and the CLI: a tree rebuilt from controller
/// state must match the workload's current membership.
pub fn tree_of(topo: &Clos, hosts: &[HostId]) -> GroupTree {
    GroupTree::new(topo, hosts.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    fn small() -> Table2 {
        let topo = Clos::scaled_fabric(4, 4, 8); // 128 hosts
        let cfg = WorkloadConfig {
            tenants: 15,
            total_groups: 120,
            host_vm_cap: 20,
            placement_p: 1,
            min_group_size: 5,
            dist: GroupSizeDist::Wve,
            seed: 5,
        };
        run(topo, cfg, 2_000, 1000.0, 1)
    }

    #[test]
    fn elmo_never_updates_cores() {
        let t = small();
        assert_eq!(t.core.total, 0);
        assert_eq!(t.core.avg_per_sec, 0.0);
    }

    #[test]
    fn hypervisors_absorb_most_updates() {
        let t = small();
        assert!(t.hypervisor.total > 0);
        assert!(
            t.hypervisor.total > t.leaf.total,
            "hv {} vs leaf {}",
            t.hypervisor.total,
            t.leaf.total
        );
    }

    #[test]
    fn elmo_network_switch_load_is_below_li() {
        let t = small();
        assert!(
            t.leaf.total < t.li_leaf.total,
            "elmo leaf {} vs li {}",
            t.leaf.total,
            t.li_leaf.total
        );
        assert!(t.spine.total < t.li_spine.total);
        assert!(t.li_core.total > 0, "li updates cores, elmo does not");
    }

    #[test]
    fn loads_scale_with_event_rate() {
        let t = small();
        // Duration = events / rate; rates are per second.
        let dur = t.events as f64 / t.events_per_sec;
        assert!(t.hypervisor.max_per_sec * dur >= 1.0);
        assert!(t.hypervisor.avg_per_sec <= t.hypervisor.max_per_sec);
    }

    #[test]
    fn tier_load_from_counts_ignores_idle_switches() {
        let load = TierLoad::from_counts([0, 0, 10, 30].into_iter(), 10.0);
        assert!((load.avg_per_sec - 2.0).abs() < 1e-9); // (10+30)/2 active /10s
        assert!((load.max_per_sec - 3.0).abs() < 1e-9);
        assert_eq!(load.total, 40);
        let idle = TierLoad::from_counts([0, 0].into_iter(), 10.0);
        assert_eq!(idle.total, 0);
    }
}
