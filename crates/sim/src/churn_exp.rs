//! Churn experiment harness: replay a seeded join/leave stream through the
//! controller burst by burst, timing the membership path and optionally
//! re-verifying the full installed state at every burst boundary.
//!
//! This is what `elmo-eval churn`, the churn section of `elmo-bench`, and
//! the CI churn smoke job drive. The stream comes from
//! [`elmo_workloads::churn_bursts`], so every consumer sees the identical
//! events and the identical checkpoints for a given (workload, seed, burst
//! size); only what is measured differs. The delta re-encode engine
//! (`elmo_controller::delta`) is toggled per run, and
//! [`states_identical`] lets callers hold a delta-on and a delta-off
//! controller to bit-identical state after every burst.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Instant;

use elmo_controller::{ChurnStats, Controller, ControllerConfig, GroupId, GroupSpec, MemberRole};
use elmo_net::vxlan::Vni;
use elmo_topology::Clos;
use elmo_verify::{check_state_with, VerifyOptions};
use elmo_workloads::{churn_bursts, initial_roles, Role, Workload, WorkloadConfig};

use crate::verify_exp::install_state;

/// Knobs for one churn run.
#[derive(Clone, Copy, Debug)]
pub struct ChurnExpConfig {
    /// Redundancy limit `R` handed to the controller.
    pub r: usize,
    /// Controller header budget in bytes.
    pub header_budget: usize,
    /// Encoder worker threads for the initial group creation (0 = all
    /// cores). The churn replay itself is sequential — that is the
    /// operation being measured.
    pub threads: usize,
    /// Join/leave events to replay.
    pub events: usize,
    /// Events per burst; verification runs at burst boundaries. 0 = one
    /// burst.
    pub burst: usize,
    /// Seed for the churn stream (the workload has its own seed).
    pub seed: u64,
    /// Whether the controller's delta re-encode path is enabled.
    pub delta: bool,
    /// Re-install the full state into a fresh fabric and run the
    /// `elmo-verify` static checker after every burst (never on the
    /// clock).
    pub verify_each_burst: bool,
}

/// Timing for one burst of events.
#[derive(Clone, Copy, Debug)]
pub struct BurstRow {
    /// Events applied in this burst.
    pub events: usize,
    /// Wall time for the whole burst (membership calls only).
    pub wall_ns: u64,
    /// 95th-percentile single-event latency within the burst.
    pub p95_event_ns: u64,
}

/// Latency accumulator for one class of membership events.
#[derive(Clone, Copy, Default, Debug)]
pub struct OutcomeNs {
    /// Events of this class.
    pub count: u64,
    /// Summed single-event wall nanoseconds.
    pub total_ns: u64,
}

impl OutcomeNs {
    fn add(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean nanoseconds per event (NaN when none occurred).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// Everything one churn run produced.
#[derive(Clone, Debug)]
pub struct ChurnRun {
    /// Groups created before the stream started.
    pub groups: usize,
    /// Events actually replayed.
    pub events: usize,
    /// Per-burst timings, in stream order.
    pub bursts: Vec<BurstRow>,
    /// The controller's own churn counters after the run.
    pub stats: ChurnStats,
    /// Latency of events the delta path absorbed.
    pub hit_ns: OutcomeNs,
    /// Latency of events that ran the full re-encoder.
    pub full_ns: OutcomeNs,
    /// Latency of events that never reached the re-encode dispatch
    /// (sender-side changes, membership count changes that keep the tree).
    pub other_ns: OutcomeNs,
    /// Bursts that were followed by a full-state verification.
    pub verified_bursts: usize,
    /// Total violations across all per-burst verifications (0 on a
    /// healthy build).
    pub verify_violations: usize,
}

impl ChurnRun {
    /// Total wall nanoseconds across all bursts.
    pub fn total_ns(&self) -> u64 {
        self.bursts.iter().map(|b| b.wall_ns).sum()
    }

    /// Membership operations per second over the timed bursts.
    pub fn events_per_sec(&self) -> f64 {
        let ns = self.total_ns();
        if ns == 0 {
            f64::NAN
        } else {
            self.events as f64 / (ns as f64 / 1e9)
        }
    }

    /// 95th-percentile single-event latency across the whole run, taken as
    /// the worst per-burst p95 (conservative, avoids re-merging samples).
    pub fn p95_event_ns(&self) -> u64 {
        self.bursts
            .iter()
            .map(|b| b.p95_event_ns)
            .max()
            .unwrap_or(0)
    }

    /// Share of receiver-tree changes absorbed by the delta path.
    pub fn delta_hit_rate(&self) -> f64 {
        let total = self.stats.tree_changes();
        if total == 0 {
            f64::NAN
        } else {
            self.stats.delta_hits as f64 / total as f64
        }
    }
}

/// Map a workload role to a controller role (shared with the temporal
/// sweep, which must replay the identical stream).
pub(crate) fn to_role(r: Role) -> MemberRole {
    match r {
        Role::Sender => MemberRole::Sender,
        Role::Receiver => MemberRole::Receiver,
        Role::Both => MemberRole::Both,
    }
}

/// Build the pre-churn controller: every workload group created through
/// the batch pipeline, with the delta path toggled per `cfg`.
pub fn build_controller(
    topo: Clos,
    workload: &Workload,
    roles: &[Vec<Role>],
    cfg: &ChurnExpConfig,
) -> Controller {
    let mut ctl_cfg = ControllerConfig::paper_default(cfg.r);
    ctl_cfg.header_budget_bytes = cfg.header_budget;
    let mut ctl = Controller::new(topo, ctl_cfg);
    let specs: Vec<GroupSpec> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let tenant = &workload.tenants[g.tenant as usize];
            let members = g
                .members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (tenant.vms[vm as usize], to_role(r)))
                .collect();
            (
                GroupId(gi as u64),
                Vni(g.tenant),
                Ipv4Addr::new(225, (gi >> 16) as u8, (gi >> 8) as u8, gi as u8),
                members,
            )
        })
        .collect();
    // Toggle before creation: group creation establishes the parsimony
    // certificates the delta path patches under, and the delta-off
    // baseline should not pay for certification it will never use.
    ctl.set_delta_enabled(cfg.delta);
    ctl.create_groups_batch(&specs, cfg.threads);
    ctl
}

/// Replay the seeded churn stream against `ctl`, timing each burst.
/// Returns the run record; the controller is left at the stream's final
/// state for follow-up checks.
pub fn replay(
    workload: &Workload,
    roles: &[Vec<Role>],
    cfg: &ChurnExpConfig,
    ctl: &mut Controller,
) -> ChurnRun {
    let _span = elmo_obs::span!("churn_exp_replay");
    // Ground truth roles per (group, vm): leaves must replay the role the
    // member actually holds (the generator's role stream is first-touch
    // ordered, not `initial_roles` ordered).
    let mut truth: Vec<BTreeMap<u32, Role>> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            g.members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (vm, r))
                .collect()
        })
        .collect();

    let mut bursts = Vec::new();
    let mut event_ns: Vec<u64> = Vec::new();
    let mut total_events = 0usize;
    let mut verified_bursts = 0usize;
    let mut verify_violations = 0usize;
    let mut hit_ns = OutcomeNs::default();
    let mut full_ns = OutcomeNs::default();
    let mut other_ns = OutcomeNs::default();
    for burst in churn_bursts(workload, cfg.events, cfg.seed, cfg.burst) {
        event_ns.clear();
        let start = Instant::now();
        for e in &burst {
            let g = &workload.groups[e.group as usize];
            let tenant = &workload.tenants[g.tenant as usize];
            let host = tenant.vms[e.vm as usize];
            let before = ctl.churn_stats();
            let t0 = Instant::now();
            if e.join {
                ctl.join(GroupId(e.group as u64), host, to_role(e.role));
            } else {
                let old_role = truth[e.group as usize]
                    .get(&e.vm)
                    .copied()
                    .expect("generator only emits leaves for members");
                ctl.leave(GroupId(e.group as u64), host, to_role(old_role));
            }
            let ns = t0.elapsed().as_nanos() as u64;
            let after = ctl.churn_stats();
            if after.delta_hits > before.delta_hits {
                hit_ns.add(ns);
            } else if after.full_reencodes > before.full_reencodes {
                full_ns.add(ns);
            } else {
                other_ns.add(ns);
            }
            event_ns.push(ns);
            if e.join {
                truth[e.group as usize].insert(e.vm, e.role);
            } else {
                truth[e.group as usize].remove(&e.vm);
            }
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        total_events += burst.len();
        event_ns.sort_unstable();
        let p95 = event_ns
            .get(95 * (event_ns.len().saturating_sub(1)) / 100)
            .copied()
            .unwrap_or(0);
        bursts.push(BurstRow {
            events: burst.len(),
            wall_ns,
            p95_event_ns: p95,
        });
        if cfg.verify_each_burst {
            verified_bursts += 1;
            verify_violations += verify_now(ctl);
        }
    }
    ChurnRun {
        groups: workload.groups.len(),
        events: total_events,
        bursts,
        stats: ctl.churn_stats(),
        hit_ns,
        full_ns,
        other_ns,
        verified_bursts,
        verify_violations,
    }
}

/// Generate the workload, build the controller, replay the stream. The
/// convenience entry point for eval/bench/CI; callers that need the final
/// controller (identity checks) use [`build_controller`] + [`replay`].
pub fn run(topo: Clos, workload_cfg: WorkloadConfig, cfg: &ChurnExpConfig) -> ChurnRun {
    let workload = Workload::generate(topo, workload_cfg);
    let roles = initial_roles(&workload, workload_cfg.seed);
    let mut ctl = build_controller(topo, &workload, &roles, cfg);
    replay(&workload, &roles, cfg, &mut ctl)
}

/// Install `ctl`'s full state into a fresh fabric + hypervisor tier and
/// run the static checker; returns the violation count (0 = clean).
pub fn verify_now(ctl: &Controller) -> usize {
    let (fabric, hvs) = install_state(ctl);
    let hv_refs: Vec<_> = hvs.values().collect();
    let report = check_state_with(ctl, &fabric, &hv_refs, &VerifyOptions::default());
    report.violations.len()
}

/// Whether two controllers hold bit-identical group state: same group
/// ids, and per group the same receiver tree, encoding (p-rules, s-rules,
/// default rules), membership counts, and fallback flag. Epochs are
/// compared too — the delta and full paths bump them identically.
pub fn states_identical(a: &Controller, b: &Controller) -> Result<(), String> {
    let mut ga: Vec<_> = a.groups().collect();
    let mut gb: Vec<_> = b.groups().collect();
    ga.sort_unstable_by_key(|g| g.id.0);
    gb.sort_unstable_by_key(|g| g.id.0);
    if ga.len() != gb.len() {
        return Err(format!("group counts differ: {} vs {}", ga.len(), gb.len()));
    }
    for (x, y) in ga.iter().zip(&gb) {
        if x.id != y.id {
            return Err(format!("group id mismatch: {:?} vs {:?}", x.id, y.id));
        }
        if x.members != y.members {
            return Err(format!("group {:?}: membership differs", x.id));
        }
        if x.tree != y.tree {
            return Err(format!("group {:?}: receiver tree differs", x.id));
        }
        if x.enc != y.enc {
            return Err(format!("group {:?}: encoding differs", x.id));
        }
        if x.unicast_fallback != y.unicast_fallback {
            return Err(format!("group {:?}: fallback flag differs", x.id));
        }
        if x.epoch != y.epoch {
            return Err(format!(
                "group {:?}: epoch {} vs {}",
                x.id, x.epoch, y.epoch
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    fn small() -> (Clos, WorkloadConfig) {
        let topo = Clos::scaled_fabric(4, 6, 8);
        let mut wl = WorkloadConfig::scaled(&topo, 12, GroupSizeDist::Wve);
        wl.total_groups = 40;
        wl.tenants = 10;
        wl.seed = 0xc4u64;
        (topo, wl)
    }

    #[test]
    fn delta_run_verifies_clean_and_hits() {
        let (topo, wl) = small();
        let cfg = ChurnExpConfig {
            r: 12,
            header_budget: 325,
            threads: 1,
            events: 600,
            burst: 200,
            seed: 7,
            delta: true,
            verify_each_burst: true,
        };
        let run = run(topo, wl, &cfg);
        assert_eq!(run.events, 600);
        assert_eq!(run.verified_bursts, 3);
        assert_eq!(run.verify_violations, 0, "state must verify clean");
        assert!(run.stats.delta_hits > 0, "stream produced no delta hits");
        // Sender-only and same-host events never reach the re-encode
        // dispatch, so tree changes can undercount events but the split
        // must be exact.
        assert!(run.stats.tree_changes() <= run.events as u64);
    }

    #[test]
    fn delta_and_full_paths_converge_identically() {
        let (topo, wl) = small();
        let base = ChurnExpConfig {
            r: 12,
            header_budget: 325,
            threads: 1,
            events: 500,
            burst: 500,
            seed: 9,
            delta: true,
            verify_each_burst: false,
        };
        let workload = Workload::generate(topo, wl);
        let roles = initial_roles(&workload, wl.seed);
        let mut on = build_controller(topo, &workload, &roles, &base);
        let off_cfg = ChurnExpConfig {
            delta: false,
            ..base
        };
        let mut off = build_controller(topo, &workload, &roles, &off_cfg);
        let run_on = replay(&workload, &roles, &base, &mut on);
        let run_off = replay(&workload, &roles, &off_cfg, &mut off);
        states_identical(&on, &off).expect("delta path diverged from full path");
        assert!(run_on.stats.delta_hits > 0);
        assert_eq!(run_off.stats.delta_hits, 0);
        assert_eq!(
            run_on.stats.tree_changes(),
            run_off.stats.tree_changes(),
            "both modes must see the same tree-change stream"
        );
    }
}
