//! Ablation of the paper's encoding design decisions (§3.1, D1–D3).
//!
//! The paper walks its running example through three encoding stages:
//!
//! * **D1** — one p-rule per *physical* switch on the multicast tree
//!   (bitmap over the switch's ports + a per-layer switch identifier):
//!   161 bits for the Figure 3a group;
//! * **D2** — encode on the *logical* topology (one rule per pod's logical
//!   spine, one for the logical core, identifier-free upstream rules):
//!   83 bits (a ~48% reduction);
//! * **D3** — share bitmaps across switches within R: 62 bits (a further
//!   ~25%).
//!
//! This module recomputes all three stages for any group so the reductions
//! can be measured across a whole workload, not just the running example.
//! Exact bit counts depend on flag conventions Figure 2 leaves open (see
//! DESIGN.md §4); what must reproduce is the *ratio* of the reductions.

use elmo_core::{encode_group, EncoderConfig, HeaderLayout};
use elmo_topology::{Clos, GroupTree, HostId, LeafId, PodId, UpstreamCover};

/// Header bits under each design stage for one (group, sender) pair.
#[derive(Clone, Copy, Debug)]
pub struct AblationPoint {
    /// D1: per-physical-switch rules.
    pub d1_bits: usize,
    /// D2: logical topology, no sharing (each switch its own rule).
    pub d2_bits: usize,
    /// D3: logical topology with bitmap sharing at the given R.
    pub d3_bits: usize,
}

impl AblationPoint {
    /// Fractional reduction from D1 to D2.
    pub fn d2_reduction(&self) -> f64 {
        1.0 - self.d2_bits as f64 / self.d1_bits as f64
    }

    /// Fractional reduction from D2 to D3.
    pub fn d3_reduction(&self) -> f64 {
        1.0 - self.d3_bits as f64 / self.d2_bits as f64
    }
}

/// Bits to identify a physical switch of each layer (D1 uses per-layer
/// identifier widths: 2 bits for the example's four cores, 3 for its eight
/// spines/leaves).
fn physical_id_bits(topo: &Clos) -> (usize, usize, usize) {
    use elmo_core::layout::id_bits;
    (
        id_bits(topo.num_leaves()),
        id_bits(topo.num_spines()),
        id_bits(topo.num_cores()),
    )
}

/// D1: one `(full port bitmap, switch id, next flag)` rule per physical
/// switch the packet could touch. Without the logical-topology insight,
/// multipath means *every* spine of a participating pod and *every* core
/// may forward the packet, so each needs its own rule; and the strawman's
/// port accounting assumes the generic full-mesh spine<->core wiring (each
/// spine sees every core and vice versa), which is how the paper's 161-bit
/// figure for the running example arises.
pub fn d1_bits(topo: &Clos, tree: &GroupTree, sender: HostId) -> usize {
    let (leaf_id, spine_id, core_id) = physical_id_bits(topo);
    let sender_leaf = topo.leaf_of_host(sender);
    let sender_pod = topo.pod_of_leaf(sender_leaf);
    let leaf_rule = topo.leaf_ports() + leaf_id + 1;
    // Full-mesh port view: spine = pod leaves + all cores; core = all spines.
    let spine_rule = topo.spine_down_ports() + topo.num_cores() + spine_id + 1;
    let core_rule = topo.num_spines() + core_id + 1;

    let mut bits = 0usize;
    // Every member leaf needs a rule (the sender's own leaf included: it
    // replicates to co-located receivers and relays upward).
    bits += tree.num_leaves().max(1) * leaf_rule;
    if !tree.has_leaf(sender_leaf) {
        bits += leaf_rule;
    }
    // Every spine of every participating pod (multipath may land anywhere).
    let mut pods = tree.num_pods();
    if !tree.has_pod(sender_pod) {
        pods += 1;
    }
    let crosses = tree.pods().any(|p| p != sender_pod) || !tree.has_pod(sender_pod);
    if tree.num_leaves() > 1 || !tree.has_leaf(sender_leaf) || crosses {
        bits += pods * topo.params().spines_per_pod * spine_rule;
    }
    // Every core when the tree crosses pods.
    if crosses && tree.pods().any(|p| p != sender_pod) {
        bits += topo.num_cores() * core_rule;
    }
    bits
}

/// D2: the logical encoding with sharing disabled (R = 0 merges only
/// identical bitmaps; here we force one rule per switch by counting each
/// leaf and pod separately) — flags byte + upstream rules + core bitmap +
/// one identifier-bearing rule per pod and per leaf.
pub fn d2_bits(topo: &Clos, layout: &HeaderLayout, tree: &GroupTree, sender: HostId) -> usize {
    let sender_leaf = topo.leaf_of_host(sender);
    let sender_pod = topo.pod_of_leaf(sender_leaf);
    let mut bits = layout.flags_bits() + layout.u_leaf_bits();
    if tree.leaves().any(|l| l != sender_leaf) {
        bits += layout.u_spine_bits();
    }
    if tree.pods().any(|p| p != sender_pod) {
        bits += layout.core_bits();
        if tree.num_pods() > 1 {
            bits += tree.num_pods() * layout.d_spine_rule_bits(1);
        }
    }
    if tree.num_leaves() > 1 {
        bits += tree.num_leaves() * layout.d_leaf_rule_bits(1);
    }
    bits
}

/// D3: the real encoder at redundancy limit `r` (unlimited s-rule capacity,
/// paper budget).
pub fn d3_bits(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    sender: HostId,
    r: usize,
) -> usize {
    let encoder = EncoderConfig::with_budget(layout, 325, r);
    let mut sa = |_p: PodId| true;
    let mut la = |_l: LeafId| true;
    let enc = encode_group(topo, tree, &encoder, &mut sa, &mut la);
    elmo_core::header_for_sender(
        topo,
        layout,
        tree,
        &enc,
        sender,
        &UpstreamCover::multipath(),
    )
    .bit_len(layout)
}

/// All three stages for one group.
pub fn ablate(topo: &Clos, tree: &GroupTree, sender: HostId, r: usize) -> AblationPoint {
    let layout = HeaderLayout::for_clos(topo);
    AblationPoint {
        d1_bits: d1_bits(topo, tree, sender),
        d2_bits: d2_bits(topo, &layout, tree, sender),
        d3_bits: d3_bits(topo, &layout, tree, sender, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn running_example() -> (Clos, GroupTree) {
        let topo = Clos::paper_example();
        let tree = GroupTree::new(
            &topo,
            [
                HostId(0),
                HostId(1),
                HostId(42),
                HostId(48),
                HostId(49),
                HostId(57),
            ],
        );
        (topo, tree)
    }

    /// The §3.1 narrative: D1 -> D2 cuts the header roughly in half, D2 ->
    /// D3 shaves off another chunk. The paper's exact values (161 -> 83 ->
    /// 62 bits) depend on flag conventions Figure 2 leaves open; our layout
    /// must land in the same bands.
    #[test]
    fn running_example_reductions_match_paper_shape() {
        let (topo, tree) = running_example();
        let p = ablate(&topo, &tree, HostId(0), 2);
        // D1 lands at 160 bits vs the paper's 161 (one framing bit of
        // difference in an under-specified strawman layout).
        assert!(
            (150..=175).contains(&p.d1_bits),
            "d1 = {} bits (paper: 161)",
            p.d1_bits
        );
        // D2: ours carries a flags byte and per-rule next-flags the paper's
        // 83-bit count omits, landing slightly above.
        assert!(
            (75..=105).contains(&p.d2_bits),
            "d2 = {} bits (paper: 83)",
            p.d2_bits
        );
        // D3 below D2 (paper: 62 bits) — sharing must help this group.
        assert!(
            p.d3_bits < p.d2_bits,
            "d3 = {} >= d2 = {}",
            p.d3_bits,
            p.d2_bits
        );
        // Reduction magnitude for the logical-topology step: paper ~48%.
        assert!(p.d2_reduction() > 0.30, "d2 reduction {}", p.d2_reduction());
    }

    #[test]
    fn ablation_is_monotone_for_multi_pod_groups() {
        let (topo, tree) = running_example();
        let p = ablate(&topo, &tree, HostId(0), 12);
        assert!(p.d1_bits > p.d2_bits);
        assert!(p.d2_bits >= p.d3_bits);
    }

    #[test]
    fn leaf_local_group_is_tiny_under_all_stages() {
        let topo = Clos::paper_example();
        let tree = GroupTree::new(&topo, [HostId(0), HostId(1)]);
        let p = ablate(&topo, &tree, HostId(0), 0);
        assert!(p.d2_bits <= 32, "d2 = {}", p.d2_bits);
        assert!(p.d3_bits <= p.d2_bits + 8);
    }
}
