//! End-to-end verification harness: generate a workload, compile it
//! through the controller, install every rule into a simulated fabric and
//! hypervisor tier, then run the `elmo-verify` static checker plus its
//! differential replay mode over the result.
//!
//! This is what `elmo-eval verify` (and the CI smoke job) drives. On a
//! healthy build the report must be empty: the checker proves exact
//! delivery, loop freedom, and resource budgets for every compiled group
//! without injecting a packet, and the sampled differential replay must
//! agree with the static walk byte for byte. On top of the checker's own
//! passes, this module cross-checks the static walk's traffic accounting
//! against [`crate::metrics::traffic_model`], the independent model used
//! by the Figure-4/5 sweeps, and reports any disagreement as a
//! `redundancy_mismatch` violation.

use std::collections::BTreeMap;

use elmo_controller::{Controller, ControllerConfig, GroupId, GroupSpec, MemberRole};
use elmo_dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig, VmSlot};
use elmo_net::vxlan::Vni;
use elmo_topology::{Clos, HostId, LeafId, PodId};
use elmo_verify::{
    check_state_with, differential_check_with, Report, VerifyOptions, Violation, ViolationKind,
    Witness,
};
use elmo_workloads::{initial_roles, Role, Workload, WorkloadConfig};

use crate::metrics;

/// Everything one verification run produced.
#[derive(Clone, Debug)]
pub struct VerifyRun {
    /// The static checker's report, extended with the traffic cross-check
    /// and differential-replay violations.
    pub report: Report,
    /// (group, sender) pairs replayed through the fast-path fabric.
    pub differential_sampled: usize,
    /// Sender walks compared against `metrics::traffic_model`.
    pub traffic_cross_checked: usize,
}

/// Knobs for one verification run.
#[derive(Clone, Copy, Debug)]
pub struct VerifyExpConfig {
    /// Redundancy limit `R` handed to the controller.
    pub r: usize,
    /// Controller header budget in bytes.
    pub header_budget: usize,
    /// Encoder worker threads (0 = all cores).
    pub threads: usize,
    /// Groups to replay in differential mode.
    pub samples: usize,
    /// Seed for the differential sampler.
    pub seed: u64,
    /// Shard count for the differential replay: 1 = serial loop, more
    /// = the sharded multi-core engine, 0 = one shard per core. Either
    /// way the replays are diffed against the same static walk.
    pub replay_threads: usize,
}

/// Compile `workload_cfg` on `topo`, install the full state, and verify it.
pub fn run(topo: Clos, workload_cfg: WorkloadConfig, cfg: &VerifyExpConfig) -> VerifyRun {
    let _span = elmo_obs::span!("verify_exp_run");
    let workload = Workload::generate(topo, workload_cfg);
    let roles = initial_roles(&workload, workload_cfg.seed);

    let mut ctl_cfg = ControllerConfig::paper_default(cfg.r);
    ctl_cfg.header_budget_bytes = cfg.header_budget;
    let mut ctl = Controller::new(topo, ctl_cfg);
    let specs: Vec<GroupSpec> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let tenant = &workload.tenants[g.tenant as usize];
            let members: Vec<(HostId, MemberRole)> = g
                .members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (tenant.vms[vm as usize], to_role(r)))
                .collect();
            (
                GroupId(gi as u64),
                Vni(g.tenant),
                std::net::Ipv4Addr::new(225, (gi >> 16) as u8, (gi >> 8) as u8, gi as u8),
                members,
            )
        })
        .collect();
    ctl.create_groups_batch(&specs, cfg.threads);

    let (mut fabric, hvs) = install_state(&ctl);
    let layout = *ctl.layout();

    let hv_refs: Vec<&HypervisorSwitch> = hvs.values().collect();
    let opts = VerifyOptions {
        collect_traffic: true,
        ..VerifyOptions::default()
    };
    let mut report = check_state_with(&ctl, &fabric, &hv_refs, &opts);

    // Cross-check the walk's redundancy accounting against the traffic
    // model the sweeps report. The model always assumes multipath
    // upstream forwarding, so skip groups the controller gave explicit
    // upstream covers.
    let mut cross_checked = 0usize;
    let mut extra: Vec<Violation> = Vec::new();
    for t in &report.traffic {
        let state = ctl.group(t.group).expect("traffic rows name live groups");
        if !state.covers.is_empty() {
            continue;
        }
        let model = metrics::traffic_model(&topo, &layout, &state.tree, &state.enc, t.sender);
        cross_checked += 1;
        if model.elmo_links != t.links
            || model.elmo_fixed != t.fixed_bytes
            || model.header_len != t.header_len
        {
            extra.push(Violation {
                group: Some(t.group),
                kind: ViolationKind::RedundancyMismatch,
                witness: Witness {
                    host: Some(t.sender),
                    ..Witness::default()
                },
                detail: format!(
                    "static walk links/fixed/header {}/{}/{} vs traffic model {}/{}/{}",
                    t.links,
                    t.fixed_bytes,
                    t.header_len,
                    model.elmo_links,
                    model.elmo_fixed,
                    model.header_len
                ),
            });
        }
    }
    report.violations.extend(extra);

    let diff =
        differential_check_with(&ctl, &mut fabric, cfg.samples, cfg.seed, cfg.replay_threads);
    report.violations.extend(diff.violations);

    VerifyRun {
        report,
        differential_sampled: diff.sampled,
        traffic_cross_checked: cross_checked,
    }
}

/// Install a controller's full compiled state into a fresh simulated
/// fabric and hypervisor tier, exactly as a deployment agent would. The
/// switch group tables are left uncapped because the paper-default
/// controller admits unlimited s-rules to observe natural demand; the
/// verifier still reports occupancy against the controller's own Fmax.
/// Shared with [`crate::churn_exp`], which re-installs at every burst
/// checkpoint.
pub fn install_state(ctl: &Controller) -> (Fabric, BTreeMap<HostId, HypervisorSwitch>) {
    let mut fabric = Fabric::new(
        *ctl.topo(),
        SwitchConfig {
            group_table_capacity: usize::MAX,
            ..SwitchConfig::default()
        },
    );
    let layout = *ctl.layout();
    let mut hvs: BTreeMap<HostId, HypervisorSwitch> = BTreeMap::new();
    let mut states: Vec<_> = ctl.groups().collect();
    states.sort_unstable_by_key(|g| g.id.0);
    for state in states {
        if state.unicast_fallback {
            continue;
        }
        for (leaf, bm) in &state.enc.d_leaf.s_rules {
            fabric
                .leaf_mut(LeafId(*leaf))
                .install_srule(state.outer_addr, bm.clone())
                .expect("uncapped leaf table");
        }
        for (pod, bm) in &state.enc.d_spine.s_rules {
            fabric
                .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
                .expect("uncapped spine table");
        }
        for h in state.receiver_hosts() {
            hvs.entry(h)
                .or_insert_with(|| HypervisorSwitch::new(h))
                .subscribe(state.outer_addr, VmSlot(0));
        }
        for h in state.sender_hosts() {
            let header = ctl
                .header_for(state.id, h)
                .expect("non-fallback group has a header for every sender");
            hvs.entry(h)
                .or_insert_with(|| HypervisorSwitch::new(h))
                .install_flow(
                    state.vni,
                    state.tenant_addr,
                    SenderFlow::new(state.outer_addr, state.vni, &header, &layout, vec![]),
                );
        }
    }
    (fabric, hvs)
}

fn to_role(r: Role) -> MemberRole {
    match r {
        Role::Sender => MemberRole::Sender,
        Role::Receiver => MemberRole::Receiver,
        Role::Both => MemberRole::Both,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_workloads::GroupSizeDist;

    #[test]
    fn scaled_workload_verifies_clean() {
        let topo = Clos::scaled_fabric(6, 24, 16);
        let mut wl = WorkloadConfig::scaled(&topo, 12, GroupSizeDist::Wve);
        wl.total_groups = 160;
        let run = run(
            topo,
            wl,
            &VerifyExpConfig {
                r: 12,
                header_budget: 325,
                threads: 0,
                samples: 120,
                seed: 0xe1_40,
                // Route the differential replays through the sharded
                // engine so the checker also diffs the multi-core path.
                replay_threads: 2,
            },
        );
        assert!(
            run.report.ok(),
            "expected a clean report, got: {:#?}",
            run.report.counts_by_kind()
        );
        assert!(run.differential_sampled > 0);
        assert!(run.traffic_cross_checked > 0);
    }
}
