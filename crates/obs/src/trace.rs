//! Causal copy-tree tracing: the event model, the tree builder, and the
//! per-shard flight recorder.
//!
//! A traced replay records one [`TraceEvent`] per *edge* of a packet's
//! replication tree — parent switch to child switch at every fabric hop,
//! parent switch to host at every delivery, and a synthetic root edge at
//! injection. Recording edges (rather than annotating queue entries with
//! parent pointers) keeps the hot-path cost to one branch plus a `Vec`
//! push and, crucially, makes the trace *shard-invariant*: the multiset
//! of edges a replay produces is the same whether copies were processed
//! serially, or spread across N shard workers and stitched afterwards.
//! [`sort_events`] puts any such multiset into the one canonical order,
//! so trace equality across shard counts is plain slice equality.
//!
//! Determinism: every identifier here derives from (packet index, dense
//! switch id). No wall clocks, no addresses, no randomness — the same
//! replay always yields byte-identical trace output, which is what lets
//! CI pin exact copy-tree node counts.
//!
//! This module is topology-agnostic: node ids are opaque `u32`s (a dense
//! switch id, or [`HOST_NODE_BIT`] | host id). The data plane supplies a
//! labeler when building a [`CopyTree`]; the controller supplies rule
//! attribution afterwards via [`CopyTree::annotate`].

use std::collections::BTreeMap;

use crate::json::JsonValue;

/// Sentinel parent id for the injection (root) edge of a packet's tree.
pub const TRACE_ROOT: u32 = u32::MAX;

/// High bit marking a node id as a host (`HOST_NODE_BIT | HostId`)
/// rather than a dense switch id.
pub const HOST_NODE_BIT: u32 = 1 << 31;

/// One edge of a packet's replication tree.
///
/// `Copy` and 16 bytes: cheap enough to push into a per-worker `Vec` or
/// a [`FlightRecorder`] ring from the replay hot loop without allocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct TraceEvent {
    /// Packet index within the traced run (injection order).
    pub pkt: u32,
    /// Dense switch id of the parent, or [`TRACE_ROOT`] for injection.
    pub parent: u32,
    /// Dense switch id of the child, or [`HOST_NODE_BIT`] | host id.
    pub child: u32,
    /// The copy's pop depth entering the child ([`HOST_NODE_BIT`] children
    /// carry the sentinel depth the data plane uses for stripped copies).
    pub state: u8,
}

impl TraceEvent {
    /// Deterministic node id for this event's child: derived from
    /// (packet index, switch id) only, per the tracing determinism rule.
    pub fn child_id(&self) -> u64 {
        ((self.pkt as u64) << 32) | self.child as u64
    }

    /// Deterministic node id for this event's parent (`None` at the root).
    pub fn parent_id(&self) -> Option<u64> {
        if self.parent == TRACE_ROOT {
            None
        } else {
            Some(((self.pkt as u64) << 32) | self.parent as u64)
        }
    }
}

/// Sort a stitched event multiset into the canonical order: by
/// (packet, parent, child, state). After this, traces from different
/// shard counts (or the serial path) compare with `==`.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_unstable();
}

fn trace_metrics() -> &'static (crate::Counter, crate::Counter) {
    static M: std::sync::OnceLock<(crate::Counter, crate::Counter)> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        (
            crate::counter("trace.trees_built"),
            crate::counter("trace.flight_recorder.dumps"),
        )
    })
}

/// One node of a built [`CopyTree`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceNode {
    /// Deterministic id: `(packet << 32) | node`.
    pub id: u64,
    /// Parent node id (`None` for the ingress switch).
    pub parent: Option<u64>,
    /// Raw node id: dense switch id or `HOST_NODE_BIT | host`.
    pub node: u32,
    /// Human label supplied by the builder (`"leaf:3"`, `"host:42"`, ...).
    pub label: String,
    /// Pop depth entering this node.
    pub state: u8,
    /// Match source resolved at this node ("p-rule", "s-rule",
    /// "default-p-rule", "deliver", ...). Empty until annotated.
    pub matched: String,
    /// Stable rule-attribution id from the controller's compiled state
    /// (e.g. `"g3/d-leaf/p0"`). Empty until annotated.
    pub rule: String,
}

/// A packet's full replication tree, built from its trace events.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CopyTree {
    /// Packet index this tree belongs to.
    pub packet: u32,
    /// Nodes in deterministic preorder (children visited in ascending
    /// raw-node-id order, hosts after switches by construction of
    /// [`HOST_NODE_BIT`]).
    pub nodes: Vec<TraceNode>,
}

impl CopyTree {
    /// Build the tree for packet `pkt` from a traced event set, using
    /// `label` to render raw node ids. Events for other packets are
    /// ignored, so one traced batch can be split into per-packet trees.
    /// Returns an empty tree when the packet has no root event.
    pub fn build(pkt: u32, events: &[TraceEvent], label: impl Fn(u32) -> String) -> CopyTree {
        let mut children: BTreeMap<u32, Vec<(u32, u8)>> = BTreeMap::new();
        let mut root: Option<(u32, u8)> = None;
        for ev in events.iter().filter(|e| e.pkt == pkt) {
            if ev.parent == TRACE_ROOT {
                root = Some((ev.child, ev.state));
            } else {
                children
                    .entry(ev.parent)
                    .or_default()
                    .push((ev.child, ev.state));
            }
        }
        for kids in children.values_mut() {
            kids.sort_unstable();
        }
        let mut tree = CopyTree {
            packet: pkt,
            nodes: Vec::new(),
        };
        let Some((root_node, root_state)) = root else {
            return tree;
        };
        // Iterative preorder walk; `visit` guards against malformed event
        // sets that alias a node id (each node expanded at most once).
        let mut stack: Vec<(u32, Option<u64>, u8)> = vec![(root_node, None, root_state)];
        let mut visited: BTreeMap<u32, ()> = BTreeMap::new();
        while let Some((node, parent, state)) = stack.pop() {
            let id = ((pkt as u64) << 32) | node as u64;
            tree.nodes.push(TraceNode {
                id,
                parent,
                node,
                label: label(node),
                state,
                matched: String::new(),
                rule: String::new(),
            });
            if visited.insert(node, ()).is_some() {
                continue;
            }
            if let Some(kids) = children.get(&node) {
                // Push in reverse so the stack pops children in ascending
                // raw-id order, keeping preorder deterministic.
                for &(child, st) in kids.iter().rev() {
                    stack.push((child, Some(id), st));
                }
            }
        }
        trace_metrics().0.inc();
        tree
    }

    /// Host ids of every host-leaf node, ascending and deduplicated.
    /// For a correct trace these are exactly the delivered receivers.
    pub fn leaf_hosts(&self) -> Vec<u32> {
        let mut hosts: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.node & HOST_NODE_BIT != 0)
            .map(|n| n.node & !HOST_NODE_BIT)
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }

    /// Annotate every node in place with (match source, rule id).
    pub fn annotate(&mut self, mut f: impl FnMut(&TraceNode) -> (String, String)) {
        for i in 0..self.nodes.len() {
            let (matched, rule) = f(&self.nodes[i]);
            self.nodes[i].matched = matched;
            self.nodes[i].rule = rule;
        }
    }

    /// Serialize to the versioned JSON document `elmo-eval trace` emits.
    pub fn to_json(&self) -> String {
        let mut doc = BTreeMap::new();
        doc.insert("elmo_trace".to_string(), JsonValue::U64(1));
        doc.insert("packet".to_string(), JsonValue::U64(self.packet as u64));
        let nodes: Vec<JsonValue> = self
            .nodes
            .iter()
            .map(|n| {
                let mut o = BTreeMap::new();
                o.insert("id".to_string(), JsonValue::U64(n.id));
                o.insert(
                    "parent".to_string(),
                    match n.parent {
                        Some(p) => JsonValue::U64(p),
                        None => JsonValue::Null,
                    },
                );
                o.insert("node".to_string(), JsonValue::U64(n.node as u64));
                o.insert("label".to_string(), JsonValue::String(n.label.clone()));
                o.insert("state".to_string(), JsonValue::U64(n.state as u64));
                o.insert("matched".to_string(), JsonValue::String(n.matched.clone()));
                o.insert("rule".to_string(), JsonValue::String(n.rule.clone()));
                JsonValue::Object(o)
            })
            .collect();
        doc.insert("nodes".to_string(), JsonValue::Array(nodes));
        JsonValue::Object(doc).pretty()
    }

    /// Parse a document produced by [`to_json`](Self::to_json). Lossless:
    /// `from_json(t.to_json()) == t` for every valid tree.
    pub fn from_json(text: &str) -> Result<CopyTree, String> {
        let doc = JsonValue::parse(text)?;
        let obj = doc.as_object().ok_or("trace document must be an object")?;
        match obj.get("elmo_trace").and_then(|v| v.as_u64()) {
            Some(1) => {}
            _ => return Err("missing or unsupported elmo_trace version".to_string()),
        }
        let packet = obj
            .get("packet")
            .and_then(|v| v.as_u64())
            .and_then(|v| u32::try_from(v).ok())
            .ok_or("packet must be a u32")?;
        let raw_nodes = obj
            .get("nodes")
            .and_then(|v| v.as_array())
            .ok_or("nodes must be an array")?;
        let mut nodes = Vec::with_capacity(raw_nodes.len());
        for rn in raw_nodes {
            let o = rn.as_object().ok_or("node must be an object")?;
            let get_str = |k: &str| -> Result<String, String> {
                o.get(k)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("node field {k} must be a string"))
            };
            let id = o
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or("node id must be a u64")?;
            let parent = match o.get("parent") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("node parent must be a u64 or null")?),
            };
            let node = o
                .get("node")
                .and_then(|v| v.as_u64())
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("node raw id must be a u32")?;
            let state = o
                .get("state")
                .and_then(|v| v.as_u64())
                .and_then(|v| u8::try_from(v).ok())
                .ok_or("node state must be a u8")?;
            nodes.push(TraceNode {
                id,
                parent,
                node,
                label: get_str("label")?,
                state,
                matched: get_str("matched")?,
                rule: get_str("rule")?,
            });
        }
        Ok(CopyTree { packet, nodes })
    }

    /// Render the tree as indented ASCII, one node per line.
    pub fn render(&self) -> String {
        let mut depth: BTreeMap<u64, usize> = BTreeMap::new();
        let mut out = String::new();
        for n in &self.nodes {
            let d = match n.parent {
                None => 0,
                Some(p) => depth.get(&p).copied().unwrap_or(0) + 1,
            };
            depth.insert(n.id, d);
            for _ in 0..d {
                out.push_str("  ");
            }
            out.push_str(&n.label);
            out.push_str(&format!(" [pop={}]", n.state));
            if !n.matched.is_empty() {
                out.push_str(&format!(" {} ({})", n.matched, n.rule));
            }
            out.push('\n');
        }
        out
    }
}

/// Fixed-capacity ring of the most recent trace events for one replay
/// shard. Single-writer (each shard worker owns its recorder), so the
/// ring needs no locks or atomics at all — "lock-free" by construction.
/// On anomaly the harness dumps the surviving tail as a postmortem.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    /// Next write position when the ring is full.
    head: usize,
    /// Total events ever recorded (>= buf.len() once wrapped).
    written: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (capacity 0 keeps
    /// nothing but still counts writes).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            head: 0,
            written: 0,
        }
    }

    /// Record one event, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.written += 1;
        if self.buf.capacity() == 0 {
            return;
        }
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Total events ever recorded.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events lost to ring overwrite.
    pub fn overflowed(&self) -> u64 {
        self.written - self.buf.len() as u64
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Dump the recorder's tail through the structured log as a
    /// postmortem, tagged with `reason` and `shard`. Returns the number
    /// of events dumped and bumps `trace.flight_recorder.dumps`.
    pub fn dump(&self, shard: usize, reason: &str) -> usize {
        trace_metrics().1.inc();
        let events = self.events();
        crate::warn!(
            "trace.flight_recorder.dump",
            shard = shard,
            reason = reason,
            kept = events.len(),
            written = self.written,
            overflowed = self.overflowed()
        );
        for ev in &events {
            crate::warn!(
                "trace.flight_recorder.event",
                shard = shard,
                pkt = ev.pkt,
                parent = ev.parent,
                child = ev.child,
                state = ev.state
            );
        }
        events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(n: u32) -> String {
        if n & HOST_NODE_BIT != 0 {
            format!("host:{}", n & !HOST_NODE_BIT)
        } else {
            format!("sw:{n}")
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        // Root sw:0 -> sw:1 -> {host:7, host:9}; sw:0 -> host:3.
        vec![
            TraceEvent {
                pkt: 0,
                parent: TRACE_ROOT,
                child: 0,
                state: 0,
            },
            TraceEvent {
                pkt: 0,
                parent: 0,
                child: 1,
                state: 1,
            },
            TraceEvent {
                pkt: 0,
                parent: 1,
                child: HOST_NODE_BIT | 7,
                state: 255,
            },
            TraceEvent {
                pkt: 0,
                parent: 1,
                child: HOST_NODE_BIT | 9,
                state: 255,
            },
            TraceEvent {
                pkt: 0,
                parent: 0,
                child: HOST_NODE_BIT | 3,
                state: 255,
            },
        ]
    }

    #[test]
    fn tree_build_is_order_invariant() {
        let mut ev = sample_events();
        let t1 = CopyTree::build(0, &ev, label);
        ev.reverse();
        let t2 = CopyTree::build(0, &ev, label);
        assert_eq!(t1, t2);
        assert_eq!(t1.nodes.len(), 5);
        assert_eq!(t1.leaf_hosts(), vec![3, 7, 9]);
        assert_eq!(t1.nodes[0].parent, None);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut tree = CopyTree::build(0, &sample_events(), label);
        tree.annotate(|n| (format!("m{}", n.node), format!("r{}", n.node)));
        let json = tree.to_json();
        let back = CopyTree::from_json(&json).expect("valid doc parses");
        assert_eq!(back, tree);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(CopyTree::from_json("{").is_err());
        assert!(CopyTree::from_json("{\"elmo_trace\":2}").is_err());
        assert!(CopyTree::from_json("{\"elmo_trace\":1,\"packet\":0,\"nodes\":3}").is_err());
    }

    #[test]
    fn canonical_sort_makes_shuffles_equal() {
        let mut a = sample_events();
        let mut b = sample_events();
        b.swap(0, 3);
        b.swap(1, 4);
        sort_events(&mut a);
        sort_events(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn recorder_keeps_last_n_and_counts_overflow() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10u32 {
            r.record(TraceEvent {
                pkt: i,
                parent: TRACE_ROOT,
                child: i,
                state: 0,
            });
        }
        assert_eq!(r.written(), 10);
        assert_eq!(r.overflowed(), 6);
        let kept: Vec<u32> = r.events().iter().map(|e| e.pkt).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn recorder_zero_capacity_only_counts() {
        let mut r = FlightRecorder::new(0);
        r.record(TraceEvent {
            pkt: 0,
            parent: TRACE_ROOT,
            child: 0,
            state: 0,
        });
        assert_eq!(r.written(), 1);
        assert!(r.events().is_empty());
    }

    #[test]
    fn render_indents_by_causal_depth() {
        let tree = CopyTree::build(0, &sample_events(), label);
        let text = tree.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("sw:0"));
        assert!(text.contains("\n    host:7"));
    }
}
