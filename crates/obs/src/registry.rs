//! The global metrics registry: counters, gauges, and histograms.
//!
//! Recording is sharded per thread. Each thread lazily registers one
//! [`Shard`] — a fixed-size slab of `AtomicU64` slots — into a global
//! list, then records into it with relaxed atomics and **no locking** on
//! the hot path (the only lock is taken once per thread lifetime, at
//! shard registration, and once per metric name, at handle registration;
//! call sites cache handles in `OnceLock`s). [`snapshot`] merges all
//! shards on read. Shards of exited threads stay in the list (they are
//! `Arc`-kept), so no count is ever lost.
//!
//! Determinism: every sharded slot is a commutative sum (counter adds,
//! histogram bucket/count/sum adds) or an order-free bound (histogram
//! min/max), so a merged snapshot of the same work is identical at any
//! thread count and interleaving. Gauges are last-write-wins and live in
//! one global slab — set them from sequential code only. Nothing in this
//! module is ever read back by instrumented code, so metrics cannot feed
//! into results.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{bucket_index, bucket_value, N_BUCKETS};
use crate::json::JsonValue;

/// Capacity limits. Registration past a limit returns a dead handle that
/// records nothing (and logs one warning) rather than failing.
const MAX_COUNTERS: usize = 256;
const MAX_GAUGES: usize = 64;
const MAX_HISTS: usize = 64;

/// Per-histogram slot layout inside a shard: count, sum, min, max, then
/// one slot per bucket.
const HIST_STRIDE: usize = 4 + N_BUCKETS;
const H_COUNT: usize = 0;
const H_SUM: usize = 1;
const H_MIN: usize = 2;
const H_MAX: usize = 3;
const H_BUCKET0: usize = 4;

/// Dead-handle sentinel: recording through it is a no-op.
const DEAD: u16 = u16::MAX;

/// One thread's private recording slab.
struct Shard {
    counters: Vec<AtomicU64>,
    hists: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Shard {
        let mut counters = Vec::with_capacity(MAX_COUNTERS);
        counters.resize_with(MAX_COUNTERS, || AtomicU64::new(0));
        let mut hists = Vec::with_capacity(MAX_HISTS * HIST_STRIDE);
        hists.resize_with(MAX_HISTS * HIST_STRIDE, || AtomicU64::new(0));
        // Min slots start at MAX so fetch_min works from the first record.
        // ordering: shard not yet shared; Relaxed is trivially enough.
        for h in 0..MAX_HISTS {
            hists[h * HIST_STRIDE + H_MIN].store(u64::MAX, Ordering::Relaxed);
        }
        Shard { counters, hists }
    }

    fn reset(&self) {
        // ordering: statistics cells publish no other memory; callers reset
        // between runs, when recorders are quiescent.
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in 0..MAX_HISTS {
            for s in 0..HIST_STRIDE {
                let init = if s == H_MIN { u64::MAX } else { 0 };
                // ordering: see the counter reset above.
                self.hists[h * HIST_STRIDE + s].store(init, Ordering::Relaxed);
            }
        }
    }
}

/// Name tables: index in the vector is the handle id.
#[derive(Default)]
struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    hists: Vec<String>,
}

struct Registry {
    names: Mutex<Names>,
    gauges: Vec<AtomicU64>,
    shards: Mutex<Vec<Arc<Shard>>>,
    enabled: AtomicBool,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| {
        let mut gauges = Vec::with_capacity(MAX_GAUGES);
        gauges.resize_with(MAX_GAUGES, || AtomicU64::new(0));
        Registry {
            names: Mutex::new(Names::default()),
            gauges,
            shards: Mutex::new(Vec::new()),
            enabled: AtomicBool::new(true),
        }
    })
}

thread_local! {
    static SHARD: Arc<Shard> = {
        let shard = Arc::new(Shard::new());
        registry()
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&shard));
        shard
    };
}

fn lock_names() -> std::sync::MutexGuard<'static, Names> {
    registry().names.lock().unwrap_or_else(|e| e.into_inner())
}

fn register(table: &mut Vec<String>, name: &str, cap: usize, kind: &str) -> u16 {
    if let Some(i) = table.iter().position(|n| n == name) {
        return i as u16;
    }
    if table.len() >= cap {
        crate::warn!("obs.registry_full", kind = kind, name = name);
        return DEAD;
    }
    table.push(name.to_string());
    (table.len() - 1) as u16
}

/// Whether recording is enabled (default: yes).
pub fn enabled() -> bool {
    // ordering: standalone on/off flag; publishes no other memory.
    registry().enabled.load(Ordering::Relaxed)
}

/// Turn recording on or off globally. Handles stay valid either way; a
/// disabled registry makes every record a single relaxed load.
pub fn set_enabled(on: bool) {
    // ordering: standalone on/off flag; a racing record may slip through
    // once, which snapshot consumers tolerate.
    registry().enabled.store(on, Ordering::Relaxed);
}

/// Zero every counter, gauge, and histogram (names and handles survive).
/// For tests and CLI runs that want a per-run snapshot.
pub fn reset() {
    let reg = registry();
    // ordering: statistics cells publish no other memory; reset runs
    // between runs, when recorders are quiescent.
    for g in &reg.gauges {
        g.store(0, Ordering::Relaxed);
    }
    for shard in reg.shards.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        shard.reset();
    }
}

// ----- handles ---------------------------------------------------------------

/// A monotonically increasing sum, sharded per thread.
#[derive(Clone, Copy, Debug)]
pub struct Counter(u16);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(self, n: u64) {
        if self.0 == DEAD || n == 0 || !enabled() {
            return;
        }
        // ordering: monotonic statistic, aggregated only at snapshot time
        // after recorders quiesce; publishes no other memory.
        SHARD.with(|s| s.counters[self.0 as usize].fetch_add(n, Ordering::Relaxed));
    }

    /// Add 1.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }
}

/// A last-write-wins value. Global, not sharded: set it from sequential
/// code only (parallel writers would race nondeterministically).
#[derive(Clone, Copy, Debug)]
pub struct Gauge(u16);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(self, v: u64) {
        if self.0 == DEAD || !enabled() {
            return;
        }
        // ordering: last-write-wins statistic set from sequential code;
        // publishes no other memory.
        registry().gauges[self.0 as usize].store(v, Ordering::Relaxed);
    }
}

/// A log-linear value distribution, sharded per thread.
#[derive(Clone, Copy, Debug)]
pub struct Histogram(u16);

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(self, v: u64) {
        if self.0 == DEAD || !enabled() {
            return;
        }
        SHARD.with(|s| {
            let base = self.0 as usize * HIST_STRIDE;
            // ordering: per-thread statistic slots, aggregated only at
            // snapshot time after recorders quiesce.
            s.hists[base + H_COUNT].fetch_add(1, Ordering::Relaxed);
            s.hists[base + H_SUM].fetch_add(v, Ordering::Relaxed);
            s.hists[base + H_MIN].fetch_min(v, Ordering::Relaxed);
            s.hists[base + H_MAX].fetch_max(v, Ordering::Relaxed);
            s.hists[base + H_BUCKET0 + bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        });
    }
}

/// Register (or look up) a counter by name.
pub fn counter(name: &str) -> Counter {
    Counter(register(
        &mut lock_names().counters,
        name,
        MAX_COUNTERS,
        "counter",
    ))
}

/// Register (or look up) a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    Gauge(register(
        &mut lock_names().gauges,
        name,
        MAX_GAUGES,
        "gauge",
    ))
}

/// Register (or look up) a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    Histogram(register(
        &mut lock_names().hists,
        name,
        MAX_HISTS,
        "histogram",
    ))
}

// ----- snapshots -------------------------------------------------------------

/// Merged view of one histogram.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact smallest / largest recorded value; `None` when empty.
    pub min: Option<u64>,
    pub max: Option<u64>,
    /// Non-empty buckets as `(bucket index, count)`, index-sorted.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): the representative value of
    /// the bucket holding the rank, clamped to the exact min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum > rank {
                let v = bucket_value(idx);
                return v.clamp(self.min.unwrap_or(v), self.max.unwrap_or(v));
            }
        }
        self.max.unwrap_or(0)
    }
}

/// A point-in-time merge of every shard, name-keyed and order-stable.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Counter value by name (`None` if never registered).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// The snapshot restricted to deterministic metrics: drops `span.*`
    /// histograms (wall-clock timings vary run to run); everything else
    /// is a pure function of the work performed.
    pub fn deterministic(&self) -> Snapshot {
        let mut s = self.clone();
        s.histograms.retain(|name, _| !name.starts_with("span."));
        s
    }

    /// Serialize to the stable JSON document (`Self::from_json` inverts
    /// it losslessly).
    pub fn to_json(&self) -> String {
        let mut counters = BTreeMap::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), JsonValue::U64(*v));
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), JsonValue::U64(*v));
        }
        let mut hists = BTreeMap::new();
        for (k, h) in &self.histograms {
            let mut obj = BTreeMap::new();
            obj.insert("count".into(), JsonValue::U64(h.count));
            obj.insert("sum".into(), JsonValue::U64(h.sum));
            obj.insert("min".into(), h.min.map_or(JsonValue::Null, JsonValue::U64));
            obj.insert("max".into(), h.max.map_or(JsonValue::Null, JsonValue::U64));
            obj.insert(
                "buckets".into(),
                JsonValue::Array(
                    h.buckets
                        .iter()
                        .map(|&(i, c)| {
                            JsonValue::Array(vec![JsonValue::U64(i as u64), JsonValue::U64(c)])
                        })
                        .collect(),
                ),
            );
            hists.insert(k.clone(), JsonValue::Object(obj));
        }
        let mut root = BTreeMap::new();
        root.insert("elmo_obs".into(), JsonValue::U64(1));
        root.insert("counters".into(), JsonValue::Object(counters));
        root.insert("gauges".into(), JsonValue::Object(gauges));
        root.insert("histograms".into(), JsonValue::Object(hists));
        JsonValue::Object(root).pretty()
    }

    /// Parse a document produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = JsonValue::parse(text)?;
        let obj = root.as_object().ok_or("snapshot root must be an object")?;
        if obj.get("elmo_obs").and_then(|v| v.as_u64()) != Some(1) {
            return Err("missing or unsupported elmo_obs version".into());
        }
        let map_u64 = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            let mut out = BTreeMap::new();
            let m = obj
                .get(key)
                .and_then(|v| v.as_object())
                .ok_or_else(|| format!("missing object field: {key}"))?;
            for (k, v) in m {
                out.insert(
                    k.clone(),
                    v.as_u64().ok_or_else(|| format!("{key}.{k} not a u64"))?,
                );
            }
            Ok(out)
        };
        let counters = map_u64("counters")?;
        let gauges = map_u64("gauges")?;
        let mut histograms = BTreeMap::new();
        let hists = obj
            .get("histograms")
            .and_then(|v| v.as_object())
            .ok_or("missing object field: histograms")?;
        for (k, v) in hists {
            let h = v
                .as_object()
                .ok_or_else(|| format!("histograms.{k} not an object"))?;
            let field = |f: &str| -> Result<u64, String> {
                h.get(f)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("histograms.{k}.{f} not a u64"))
            };
            let opt = |f: &str| -> Result<Option<u64>, String> {
                match h.get(f) {
                    None | Some(JsonValue::Null) => Ok(None),
                    Some(v) => v
                        .as_u64()
                        .map(Some)
                        .ok_or_else(|| format!("histograms.{k}.{f} not a u64")),
                }
            };
            let mut buckets = Vec::new();
            for b in h
                .get("buckets")
                .and_then(|v| v.as_array())
                .ok_or_else(|| format!("histograms.{k}.buckets not an array"))?
            {
                let pair = b
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("histograms.{k}.buckets entry not a pair"))?;
                let idx = pair[0]
                    .as_u64()
                    .filter(|&i| (i as usize) < N_BUCKETS)
                    .ok_or_else(|| format!("histograms.{k} bucket index out of range"))?;
                let c = pair[1]
                    .as_u64()
                    .ok_or_else(|| format!("histograms.{k} bucket count not a u64"))?;
                buckets.push((idx as usize, c));
            }
            histograms.insert(
                k.clone(),
                HistSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: opt("min")?,
                    max: opt("max")?,
                    buckets,
                },
            );
        }
        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

/// Merge every shard into a named snapshot.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let names = lock_names();
    let shards: Vec<Arc<Shard>> = reg.shards.lock().unwrap_or_else(|e| e.into_inner()).clone();

    let mut counters = BTreeMap::new();
    for (i, name) in names.counters.iter().enumerate() {
        // ordering: snapshot reads; recorders are quiescent by contract
        // (see module docs), so Relaxed observes final values.
        let total: u64 = shards
            .iter()
            .map(|s| s.counters[i].load(Ordering::Relaxed))
            .sum();
        counters.insert(name.clone(), total);
    }
    let mut gauges = BTreeMap::new();
    for (i, name) in names.gauges.iter().enumerate() {
        // ordering: snapshot read under the same quiescence contract.
        gauges.insert(name.clone(), reg.gauges[i].load(Ordering::Relaxed));
    }
    let mut histograms = BTreeMap::new();
    for (i, name) in names.hists.iter().enumerate() {
        let base = i * HIST_STRIDE;
        let mut h = HistSnapshot::default();
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut buckets = vec![0u64; N_BUCKETS];
        for s in &shards {
            // ordering: snapshot reads under the same quiescence contract.
            h.count += s.hists[base + H_COUNT].load(Ordering::Relaxed);
            h.sum += s.hists[base + H_SUM].load(Ordering::Relaxed);
            min = min.min(s.hists[base + H_MIN].load(Ordering::Relaxed));
            max = max.max(s.hists[base + H_MAX].load(Ordering::Relaxed));
            for (b, out) in buckets.iter_mut().enumerate() {
                // ordering: snapshot read under the same quiescence contract.
                *out += s.hists[base + H_BUCKET0 + b].load(Ordering::Relaxed);
            }
        }
        if h.count > 0 {
            h.min = Some(min);
            h.max = Some(max);
        }
        h.buckets = buckets
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        histograms.insert(name.clone(), h);
    }
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global registry; each uses unique metric
    // names so concurrent test threads cannot interfere.

    #[test]
    fn counter_shards_merge_to_serial_total() {
        let c = counter("test.reg.shard_sum");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        c.add(5);
        assert_eq!(snapshot().counter("test.reg.shard_sum"), Some(8005));
    }

    #[test]
    fn histogram_parallel_merge_equals_serial_recording() {
        let par = histogram("test.reg.hist_par");
        let ser = histogram("test.reg.hist_ser");
        let values: Vec<u64> = (0..4000).map(|i| (i * i) % 7919).collect();
        // Parallel: 4 threads, interleaved striding.
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let vs = values.clone();
                std::thread::spawn(move || {
                    for v in vs.iter().skip(t).step_by(4) {
                        par.record(*v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for &v in &values {
            ser.record(v);
        }
        let snap = snapshot();
        let p = snap.histogram("test.reg.hist_par").unwrap();
        let s = snap.histogram("test.reg.hist_ser").unwrap();
        assert_eq!(p, s, "sharded merge must equal serial recording");
        assert_eq!(p.count, 4000);
        assert_eq!(p.min, Some(*values.iter().min().unwrap()));
        assert_eq!(p.max, Some(*values.iter().max().unwrap()));
    }

    #[test]
    fn quantiles_on_uniform_values() {
        let h = histogram("test.reg.quantiles");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = snapshot();
        let hs = snap.histogram("test.reg.quantiles").unwrap();
        assert_eq!(hs.count, 1000);
        assert_eq!(hs.sum, 500_500);
        assert!((hs.mean() - 500.5).abs() < 1e-9);
        for (q, want) in [(0.0, 1.0), (0.5, 500.0), (0.9, 900.0), (1.0, 1000.0)] {
            let got = hs.quantile(q) as f64;
            assert!(
                (got - want).abs() <= want * 0.13 + 1.0,
                "q={q} got={got} want~{want}"
            );
        }
    }

    #[test]
    fn empty_histogram_snapshot() {
        let _ = histogram("test.reg.empty");
        let snap = snapshot();
        let h = snap.histogram("test.reg.empty").unwrap();
        assert_eq!(h.count, 0);
        assert_eq!(h.min, None);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn gauges_hold_last_write() {
        let g = gauge("test.reg.gauge");
        g.set(7);
        g.set(42);
        assert_eq!(snapshot().gauges.get("test.reg.gauge"), Some(&42));
    }

    #[test]
    fn same_name_returns_same_handle() {
        let a = counter("test.reg.same");
        let b = counter("test.reg.same");
        a.inc();
        b.inc();
        assert_eq!(snapshot().counter("test.reg.same"), Some(2));
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let c = counter("test.reg.rt_counter");
        c.add(123);
        gauge("test.reg.rt_gauge").set(9);
        let h = histogram("test.reg.rt_hist");
        for v in [0, 1, 7, 8, 100, 5000, u64::MAX] {
            h.record(v);
        }
        let snap = snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn deterministic_view_drops_span_timings() {
        histogram("span.test_reg_ns").record(5);
        histogram("test.reg.kept").record(5);
        let d = snapshot().deterministic();
        assert!(!d.histograms.contains_key("span.test_reg_ns"));
        assert!(d.histograms.contains_key("test.reg.kept"));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let c = counter("test.reg.disabled");
        set_enabled(false);
        c.add(100);
        set_enabled(true);
        c.add(1);
        assert_eq!(snapshot().counter("test.reg.disabled"), Some(1));
    }
}
