//! Structured, leveled event logging.
//!
//! Events carry a name plus key=value fields and render to stderr either
//! human-readable (default) or as JSONL. The global level filter makes
//! `--quiet`/`-v` flags one-line wiring: [`set_level`] with
//! [`Level::Warn`] or [`Level::Debug`]. Emission is a single formatted
//! write under stderr's own lock; disabled levels cost one relaxed load.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::json::JsonValue;

/// Event severity, ordered most to least severe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Output format for events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Format {
    /// `level event_name key=value ...` — the default.
    Human,
    /// One JSON object per line: `{"level":...,"event":...,fields...}`.
    Jsonl,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Human, 1 = Jsonl

/// Set the maximum level that gets emitted (default [`Level::Info`]).
pub fn set_level(level: Level) {
    // ordering: standalone config flag; publishes no other memory.
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current level filter.
pub fn level() -> Level {
    // ordering: standalone config flag; stale reads only delay a level change.
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Set the output format (default [`Format::Human`]).
pub fn set_format(format: Format) {
    // ordering: standalone config flag; publishes no other memory.
    FORMAT.store(matches!(format, Format::Jsonl) as u8, Ordering::Relaxed);
}

/// Would an event at `level` be emitted?
#[inline]
pub fn enabled(level: Level) -> bool {
    // ordering: standalone config flag; stale reads only delay a level change.
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// A field value attached to an event.
#[derive(Clone, Debug)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

impl FieldValue {
    fn to_json(&self) -> JsonValue {
        match self {
            FieldValue::U64(v) => JsonValue::U64(*v),
            FieldValue::I64(v) => JsonValue::I64(*v),
            FieldValue::F64(v) => JsonValue::F64(*v),
            FieldValue::Bool(v) => JsonValue::Bool(*v),
            FieldValue::Str(v) => JsonValue::String(v.clone()),
        }
    }

    fn write_human(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => {
                let _ = write!(out, "{v:.4}");
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(v) => {
                if v.contains(' ') || v.is_empty() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str(v);
                }
            }
        }
    }
}

/// Format an event line without emitting it (exposed for tests).
pub fn format_event(level: Level, event: &str, fields: &[(&str, FieldValue)]) -> String {
    // ordering: standalone config flag; a racing format switch may route
    // one event to the old sink, which is harmless.
    if FORMAT.load(Ordering::Relaxed) == 1 {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("level".to_string(), JsonValue::String(level.name().into()));
        obj.insert("event".to_string(), JsonValue::String(event.into()));
        for (k, v) in fields {
            obj.insert((*k).to_string(), v.to_json());
        }
        JsonValue::Object(obj).to_string_compact()
    } else {
        let mut line = String::with_capacity(64);
        line.push_str(match level {
            Level::Error => "ERROR ",
            Level::Warn => "WARN  ",
            Level::Info => "INFO  ",
            Level::Debug => "DEBUG ",
            Level::Trace => "TRACE ",
        });
        line.push_str(event);
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            v.write_human(&mut line);
        }
        line
    }
}

/// Emit an event (after the level filter). Used by the macros; call
/// directly when fields are built dynamically.
pub fn emit(level: Level, event: &str, fields: &[(&str, FieldValue)]) {
    if !enabled(level) {
        return;
    }
    let line = format_event(level, event, fields);
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

/// Emit a structured event: `event!(Level::Info, "batch.done", groups = n)`.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($level) {
            $crate::log::emit(
                $level,
                $name,
                &[$((stringify!($k), $crate::log::FieldValue::from($v))),*],
            );
        }
    };
}

/// `error!("event", k = v, ...)` — always-relevant failures.
#[macro_export]
macro_rules! error {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!($crate::log::Level::Error, $name $(, $k = $v)*)
    };
}

/// `warn!("event", k = v, ...)` — degraded but continuing.
#[macro_export]
macro_rules! warn {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!($crate::log::Level::Warn, $name $(, $k = $v)*)
    };
}

/// `info!("event", k = v, ...)` — default-visible progress.
#[macro_export]
macro_rules! info {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!($crate::log::Level::Info, $name $(, $k = $v)*)
    };
}

/// `debug!("event", k = v, ...)` — shown with `-v`.
#[macro_export]
macro_rules! debug {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!($crate::log::Level::Debug, $name $(, $k = $v)*)
    };
}

/// `trace!("event", k = v, ...)` — shown with `-vv`.
#[macro_export]
macro_rules! trace {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::event!($crate::log::Level::Trace, $name $(, $k = $v)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_filter() {
        assert!(Level::Error < Level::Trace);
        // Default filter is Info.
        assert!(enabled(Level::Warn));
    }

    #[test]
    fn human_format_renders_fields() {
        let line = format_event(
            Level::Info,
            "test.event",
            &[
                ("count", FieldValue::U64(42)),
                ("name", FieldValue::Str("spine-3".into())),
                ("msg", FieldValue::Str("two words".into())),
            ],
        );
        assert_eq!(
            line,
            "INFO  test.event count=42 name=spine-3 msg=\"two words\""
        );
    }

    #[test]
    fn jsonl_lines_parse_back() {
        // format_event reads the global format; build the JSONL form
        // directly to avoid flipping global state under other tests.
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("level".to_string(), JsonValue::String("warn".into()));
        obj.insert("event".to_string(), JsonValue::String("x".into()));
        obj.insert("n".to_string(), FieldValue::U64(7).to_json());
        let line = JsonValue::Object(obj.clone()).to_string_compact();
        assert_eq!(JsonValue::parse(&line).unwrap(), JsonValue::Object(obj));
    }

    #[test]
    fn event_macro_compiles_with_mixed_fields() {
        // Trace is filtered by default, so this emits nothing.
        crate::trace!("test.macro", a = 1u64, b = "s", c = 2.5f64, d = true);
        crate::event!(Level::Trace, "test.macro2");
    }
}
