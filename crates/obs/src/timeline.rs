//! Windowed time-series over the metrics registry.
//!
//! The registry's [`Snapshot`](crate::Snapshot) model merges per-thread
//! shards on read and yields end-of-run totals — perfect for Table 2/3
//! style aggregates, useless for "how many deliveries were lost *during*
//! the failure window?". A [`Timeline`] answers that: the harness calls
//! [`close_window`](Timeline::close_window) once per logical tick (a
//! replay window, a churn batch — the tick is whatever unit the driver
//! chooses, never wall-clock time), and each call captures the *delta*
//! of every counter since the previous window plus the absolute value of
//! every gauge. Windows land in a fixed-capacity ring (oldest evicted,
//! eviction counted), and export as `timeline.jsonl` — one self-
//! describing JSON object per line.
//!
//! Determinism: windows are indexed by tick number, not timestamps, and
//! the content is a pure function of the registry, so a timeline from a
//! deterministic replay is itself byte-reproducible.

use std::collections::BTreeMap;

use crate::json::JsonValue;
use crate::registry::Snapshot;

fn timeline_metrics() -> &'static (crate::Counter, crate::Counter) {
    static M: std::sync::OnceLock<(crate::Counter, crate::Counter)> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        (
            crate::counter("timeline.windows_closed"),
            crate::counter("timeline.windows_evicted"),
        )
    })
}

/// One closed window: counter deltas over the tick plus gauge values at
/// close. Counters that did not move are omitted (absent = 0).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TimelineWindow {
    /// Tick index, starting at 0 for the first closed window.
    pub index: u64,
    /// Counter increments during this window (nonzero only).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values when the window closed.
    pub gauges: BTreeMap<String, u64>,
}

impl TimelineWindow {
    /// Counter delta by name (0 when the counter did not move).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let map_obj = |m: &BTreeMap<String, u64>| {
            JsonValue::Object(
                m.iter()
                    .map(|(k, v)| (k.clone(), JsonValue::U64(*v)))
                    .collect(),
            )
        };
        let mut doc = BTreeMap::new();
        doc.insert("elmo_timeline".to_string(), JsonValue::U64(1));
        doc.insert("window".to_string(), JsonValue::U64(self.index));
        doc.insert("counters".to_string(), map_obj(&self.counters));
        doc.insert("gauges".to_string(), map_obj(&self.gauges));
        JsonValue::Object(doc).to_string_compact()
    }

    /// Parse one JSONL line produced by [`to_json`](Self::to_json).
    /// Lossless on valid documents.
    pub fn from_json(text: &str) -> Result<TimelineWindow, String> {
        let doc = JsonValue::parse(text)?;
        let obj = doc.as_object().ok_or("timeline window must be an object")?;
        match obj.get("elmo_timeline").and_then(|v| v.as_u64()) {
            Some(1) => {}
            _ => return Err("missing or unsupported elmo_timeline version".to_string()),
        }
        let index = obj
            .get("window")
            .and_then(|v| v.as_u64())
            .ok_or("window must be a u64")?;
        let read_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            let m = obj
                .get(key)
                .and_then(|v| v.as_object())
                .ok_or_else(|| format!("{key} must be an object"))?;
            let mut out = BTreeMap::new();
            for (k, v) in m {
                out.insert(
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| format!("{key}.{k} must be a u64"))?,
                );
            }
            Ok(out)
        };
        Ok(TimelineWindow {
            index,
            counters: read_map("counters")?,
            gauges: read_map("gauges")?,
        })
    }
}

/// Ring-buffered per-window registry snapshots.
#[derive(Debug)]
pub struct Timeline {
    capacity: usize,
    base: Snapshot,
    windows: Vec<TimelineWindow>,
    /// Ring start within `windows` once at capacity.
    head: usize,
    next_index: u64,
    evicted: u64,
}

impl Timeline {
    /// Start a timeline keeping at most `capacity` windows (min 1). The
    /// current registry state becomes the baseline for window 0.
    pub fn start(capacity: usize) -> Timeline {
        Timeline {
            capacity: capacity.max(1),
            base: crate::snapshot(),
            windows: Vec::new(),
            head: 0,
            next_index: 0,
            evicted: 0,
        }
    }

    /// Close the current window: diff the registry against the previous
    /// close, append the delta window, and advance the baseline.
    pub fn close_window(&mut self) -> TimelineWindow {
        let now = crate::snapshot();
        let mut counters = BTreeMap::new();
        for (name, &v) in &now.counters {
            let before = self.base.counter(name).unwrap_or(0);
            let delta = v.saturating_sub(before);
            if delta > 0 {
                counters.insert(name.clone(), delta);
            }
        }
        let window = TimelineWindow {
            index: self.next_index,
            counters,
            gauges: now.gauges.clone(),
        };
        self.next_index += 1;
        self.base = now;
        if self.windows.len() < self.capacity {
            self.windows.push(window.clone());
        } else {
            self.windows[self.head] = window.clone();
            self.head = (self.head + 1) % self.windows.len();
            self.evicted += 1;
            timeline_metrics().1.inc();
        }
        timeline_metrics().0.inc();
        window
    }

    /// Windows currently held, oldest first.
    pub fn windows(&self) -> Vec<TimelineWindow> {
        let mut out = Vec::with_capacity(self.windows.len());
        out.extend_from_slice(&self.windows[self.head..]);
        out.extend_from_slice(&self.windows[..self.head]);
        out
    }

    /// Total windows ever closed.
    pub fn closed(&self) -> u64 {
        self.next_index
    }

    /// Windows lost to ring eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Serialize every held window as JSONL (one line per window).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for w in self.windows() {
            out.push_str(&w.to_json());
            out.push('\n');
        }
        out
    }

    /// Write [`to_jsonl`](Self::to_jsonl) to `path`.
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_capture_counter_deltas_not_totals() {
        let c = crate::counter("timeline.test.delta_counter");
        c.add(5);
        let mut tl = Timeline::start(8);
        c.add(3);
        let w0 = tl.close_window();
        assert_eq!(w0.counter("timeline.test.delta_counter"), 3);
        let w1 = tl.close_window();
        assert_eq!(w1.counter("timeline.test.delta_counter"), 0);
        assert!(!w1.counters.contains_key("timeline.test.delta_counter"));
        c.add(7);
        let w2 = tl.close_window();
        assert_eq!(w2.counter("timeline.test.delta_counter"), 7);
        assert_eq!(tl.closed(), 3);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let c = crate::counter("timeline.test.ring_counter");
        let mut tl = Timeline::start(2);
        for _ in 0..5 {
            c.inc();
            tl.close_window();
        }
        assert_eq!(tl.evicted(), 3);
        let held = tl.windows();
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].index, 3);
        assert_eq!(held[1].index, 4);
    }

    #[test]
    fn gauges_are_absolute_per_window() {
        let g = crate::gauge("timeline.test.gauge");
        let mut tl = Timeline::start(4);
        g.set(11);
        let w0 = tl.close_window();
        assert_eq!(w0.gauge("timeline.test.gauge"), Some(11));
        g.set(4);
        let w1 = tl.close_window();
        assert_eq!(w1.gauge("timeline.test.gauge"), Some(4));
    }

    #[test]
    fn window_json_round_trip_is_lossless() {
        let mut w = TimelineWindow {
            index: 7,
            ..TimelineWindow::default()
        };
        w.counters.insert("a.b".to_string(), 3);
        w.counters.insert("c".to_string(), u64::MAX);
        w.gauges.insert("g".to_string(), 12);
        let line = w.to_json();
        assert!(!line.contains('\n'));
        let back = TimelineWindow::from_json(&line).expect("valid line parses");
        assert_eq!(back, w);
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn window_json_rejects_garbage() {
        assert!(TimelineWindow::from_json("").is_err());
        assert!(TimelineWindow::from_json("{\"elmo_timeline\":9}").is_err());
        assert!(
            TimelineWindow::from_json("{\"elmo_timeline\":1,\"window\":0,\"counters\":[]}")
                .is_err()
        );
    }

    #[test]
    fn jsonl_has_one_line_per_window() {
        let c = crate::counter("timeline.test.jsonl_counter");
        let mut tl = Timeline::start(8);
        for _ in 0..3 {
            c.inc();
            tl.close_window();
        }
        let jsonl = tl.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            TimelineWindow::from_json(line).expect("every line parses");
        }
    }
}
