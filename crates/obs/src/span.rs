//! RAII wall-clock span timers.
//!
//! A [`Span`] records elapsed nanoseconds into a histogram when dropped.
//! The [`span!`](crate::span!) macro names the histogram `span.<name>_ns`
//! and caches the handle in a per-call-site `OnceLock`, so a timed scope
//! costs two `Instant` reads plus one histogram record.
//!
//! Span histograms are *wall-clock* measurements — inherently
//! nondeterministic — which is why they live under the reserved `span.`
//! prefix that [`Snapshot::deterministic`](crate::Snapshot::deterministic)
//! strips before any reproducibility comparison.

use std::time::Instant;

use crate::registry::Histogram;

/// An in-flight timed scope; records on drop.
#[must_use = "a span records its timing when dropped; binding to _ drops immediately"]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Start timing into `hist` now.
    pub fn start(hist: Histogram) -> Span {
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_ns());
    }
}

/// Time the enclosing scope: `let _span = span!("encode_group");`
/// records into the `span.encode_group_ns` histogram at scope exit.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HIST: std::sync::OnceLock<$crate::registry::Histogram> = std::sync::OnceLock::new();
        $crate::span::Span::start(
            *HIST.get_or_init(|| $crate::registry::histogram(concat!("span.", $name, "_ns"))),
        )
    }};
}

#[cfg(test)]
mod tests {
    use crate::registry::{histogram, snapshot};

    #[test]
    fn span_records_on_drop() {
        {
            let _span = crate::span!("test_span_unit");
            std::hint::black_box(1 + 1);
        }
        let snap = snapshot();
        let h = snap
            .histogram("span.test_span_unit_ns")
            .expect("registered");
        assert!(h.count >= 1);
    }

    #[test]
    fn explicit_start_records_elapsed() {
        let h = histogram("span.test_span_explicit_ns");
        let before = snapshot()
            .histogram("span.test_span_explicit_ns")
            .map_or(0, |s| s.count);
        drop(crate::span::Span::start(h));
        let after = snapshot()
            .histogram("span.test_span_explicit_ns")
            .unwrap()
            .count;
        assert_eq!(after, before + 1);
    }
}
