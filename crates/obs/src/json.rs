//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! Just enough for metric snapshots and structured log lines — no serde,
//! no external deps. Numbers keep three representations (`U64`, `I64`,
//! `F64`) so `u64` counters round-trip without passing through `f64` and
//! losing precision above 2^53.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// `BTreeMap` keeps key order stable, so output is byte-reproducible.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Numeric value as `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            JsonValue::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Numeric value as `f64` (counters convert; fine for display math).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent), trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// JSON string escaping (quotes, backslash, control chars).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine; lone surrogates
                            // become the replacement char.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    s.push(char::from_u32(combined).unwrap_or('\u{FFFD}'));
                                } else {
                                    s.push('\u{FFFD}');
                                }
                            } else {
                                s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| format!("invalid utf8 at byte {}", self.pos))?;
                    s.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            // Integers stay integers: u64 first (counters), then i64.
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_counters_roundtrip_losslessly() {
        // Above 2^53, f64 would silently round — we must not.
        for v in [0u64, 1, 2u64.pow(53) + 1, u64::MAX] {
            let text = JsonValue::U64(v).to_string_compact();
            assert_eq!(JsonValue::parse(&text).unwrap(), JsonValue::U64(v));
        }
    }

    #[test]
    fn parse_mixed_document() {
        let v =
            JsonValue::parse(r#"{"a": [1, -2, 3.5, true, false, null], "s": "hi\nthere \"q\" é"}"#)
                .unwrap();
        let obj = v.as_object().unwrap();
        let a = obj["a"].as_array().unwrap();
        assert_eq!(a[0], JsonValue::U64(1));
        assert_eq!(a[1], JsonValue::I64(-2));
        assert_eq!(a[2], JsonValue::F64(3.5));
        assert_eq!(obj["s"].as_str().unwrap(), "hi\nthere \"q\" é");
    }

    #[test]
    fn write_then_parse_is_identity() {
        let mut obj = BTreeMap::new();
        obj.insert("n".into(), JsonValue::Null);
        obj.insert("big".into(), JsonValue::U64(u64::MAX));
        obj.insert("neg".into(), JsonValue::I64(-7));
        obj.insert(
            "arr".into(),
            JsonValue::Array(vec![
                JsonValue::Bool(true),
                JsonValue::String("x\ty".into()),
            ]),
        );
        let v = JsonValue::Object(obj);
        assert_eq!(JsonValue::parse(&v.pretty()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", ""] {
            assert!(JsonValue::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }
}
