//! Log-linear histogram bucket math.
//!
//! Values 0..=3 get exact buckets; every larger octave `[2^o, 2^(o+1))` is
//! split into 4 linear sub-buckets, bounding relative quantile error at
//! 12.5% (half a sub-bucket) while covering the full `u64` range in
//! [`N_BUCKETS`] slots. The scheme is the HDR-histogram idea stripped to
//! what phase timings and byte counts need.

/// Sub-buckets per octave.
const SUB: usize = 4;

/// Total bucket count: 4 exact small-value buckets + 62 octaves × 4.
pub const N_BUCKETS: usize = SUB + (64 - 2) * SUB;

/// The bucket a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let o = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (o - 2)) & 3) as usize;
        SUB + (o - 2) * SUB + sub
    }
}

/// Smallest value in bucket `idx`.
pub fn bucket_lo(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let o = 2 + (idx - SUB) / SUB;
        let sub = ((idx - SUB) % SUB) as u64;
        (1u64 << o) + (sub << (o - 2))
    }
}

/// Largest value in bucket `idx`.
pub fn bucket_hi(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let o = 2 + (idx - SUB) / SUB;
        bucket_lo(idx) + ((1u64 << (o - 2)) - 1)
    }
}

/// Representative (midpoint) value reported for bucket `idx`.
pub fn bucket_value(idx: usize) -> u64 {
    let lo = bucket_lo(idx);
    lo + (bucket_hi(idx) - lo) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        // Buckets 0..=7 hold exactly one value each (the exact range plus
        // octave 2, whose sub-bucket width is 1).
        for v in 0..=7u64 {
            let b = bucket_index(v);
            assert_eq!(bucket_lo(b), v, "lo of bucket for {v}");
            assert_eq!(bucket_hi(b), v, "hi of bucket for {v}");
            assert_eq!(bucket_value(b), v);
        }
        // Octave 3 is the first with width-2 buckets: 8 and 9 share one.
        assert_eq!(bucket_index(8), bucket_index(9));
        assert_eq!(bucket_value(bucket_index(8)), 8);
    }

    #[test]
    fn octave_boundaries() {
        // Every power of two starts a fresh sub-bucket.
        for o in 2..63u32 {
            let v = 1u64 << o;
            let b = bucket_index(v);
            assert_eq!(bucket_lo(b), v, "2^{o}");
            assert_eq!(bucket_index(v - 1) + 1, b, "2^{o}-1 is one bucket left");
        }
    }

    #[test]
    fn buckets_tile_the_range() {
        // hi(b) + 1 == lo(b + 1) across the whole table.
        for b in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_hi(b) + 1, bucket_lo(b + 1), "bucket {b}");
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_hi(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut v = 9u64;
        while v < u64::MAX / 3 {
            let b = bucket_index(v);
            let rep = bucket_value(b) as f64;
            let err = (rep - v as f64).abs() / v as f64;
            assert!(err <= 0.125, "v={v} rep={rep} err={err}");
            v = v.wrapping_mul(3) / 2 + 1;
        }
    }
}
