//! # elmo-obs — zero-dependency observability
//!
//! The measurement substrate for the whole workspace (std only; the
//! workspace keeps building offline). Four layers:
//!
//! * **Metrics** ([`registry`]) — a global registry of named counters,
//!   gauges, and log-linear [`histogram`]s. Recording is sharded per
//!   thread: each thread owns a private slab of relaxed atomics, so
//!   workers inside `elmo_core::par` record without taking any lock, and
//!   [`snapshot`] merges the shards on read. Because counters and
//!   histogram buckets are commutative sums — and because nothing in the
//!   instrumented code ever *reads* the registry — enabling metrics can
//!   never change encoding output (asserted by
//!   `tests/parallel_determinism.rs` at the workspace root).
//! * **Spans** ([`span!`]) — RAII wall-clock timers feeding `span.*_ns`
//!   histograms, the per-phase timing profile `elmo-bench` exports.
//! * **Events** ([`error!`]/[`warn!`]/[`info!`]/[`debug!`]/[`trace!`]) —
//!   structured, leveled logging with key=value fields; human-readable
//!   on stderr by default, JSONL with [`set_format`].
//! * **Export** ([`Snapshot`]) — metrics serialize to a stable JSON
//!   document and parse back losslessly ([`Snapshot::from_json`]), so
//!   sims and CI can diff runs.
//! * **Tracing** ([`trace`]) — causal copy-tree trace events, the tree
//!   builder behind `elmo-eval trace`, and the per-shard flight
//!   recorder; [`timeline`] adds ring-buffered per-window registry
//!   snapshots for time-resolved replay/failure runs. Both derive every
//!   id from (packet index, switch id) — never wall clocks — so traced
//!   runs stay bit-identical at any shard count.
#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod log;
pub mod registry;
pub mod span;
pub mod timeline;
pub mod trace;

pub use hist::{bucket_hi, bucket_index, bucket_lo, bucket_value, N_BUCKETS};
pub use json::JsonValue;
pub use log::{set_format, set_level, FieldValue, Format, Level};
pub use registry::{
    counter, gauge, histogram, reset, set_enabled, snapshot, Counter, Gauge, HistSnapshot,
    Histogram, Snapshot,
};
pub use span::Span;
pub use timeline::{Timeline, TimelineWindow};
pub use trace::{
    sort_events, CopyTree, FlightRecorder, TraceEvent, TraceNode, HOST_NODE_BIT, TRACE_ROOT,
};
