//! Fabric-wide s-rule capacity accounting (`Fmax`).
//!
//! s-rules live in switch group tables, a resource shared by all groups
//! (paper §3.2). Leaf s-rules occupy one entry on one leaf switch; a
//! logical-spine s-rule must be present on *every* spine of the pod (the
//! packet may multipath through any of them), so it occupies one entry per
//! physical spine — the tracker accounts pods but reports physical-switch
//! occupancy.

use std::sync::OnceLock;

use elmo_topology::{Clos, LeafId, PodId};

/// Admission counters. A refused allocation is exactly the paper's
/// "spill": Algorithm 1 falls back to the default p-rule (spine) or a
/// wider p-rule set (leaf) when the group table is full. All callers are
/// sequential (phase 2 / serial path), so counts are deterministic.
struct SRuleMetrics {
    leaf_allocs: elmo_obs::Counter,
    leaf_refused: elmo_obs::Counter,
    pod_allocs: elmo_obs::Counter,
    pod_refused: elmo_obs::Counter,
}

fn metrics() -> &'static SRuleMetrics {
    static M: OnceLock<SRuleMetrics> = OnceLock::new();
    M.get_or_init(|| SRuleMetrics {
        leaf_allocs: elmo_obs::counter("controller.srules.leaf_allocs"),
        leaf_refused: elmo_obs::counter("controller.srules.leaf_refused"),
        pod_allocs: elmo_obs::counter("controller.srules.pod_allocs"),
        pod_refused: elmo_obs::counter("controller.srules.pod_refused"),
    })
}

/// Tracks group-table occupancy across every leaf and spine in the fabric.
#[derive(Clone, Debug)]
pub struct SRuleSpace {
    leaf_used: Vec<usize>,
    pod_used: Vec<usize>,
    leaf_cap: usize,
    spine_cap: usize,
}

impl SRuleSpace {
    /// Fresh tracker with per-leaf capacity `leaf_cap` and per-spine
    /// capacity `spine_cap` (a pod's s-rules are limited by its spines).
    pub fn new(topo: &Clos, leaf_cap: usize, spine_cap: usize) -> Self {
        SRuleSpace {
            leaf_used: vec![0; topo.num_leaves()],
            pod_used: vec![0; topo.num_pods()],
            leaf_cap,
            spine_cap,
        }
    }

    /// Unlimited capacity (used to measure natural demand, Figures 4/5
    /// center panels).
    pub fn unlimited(topo: &Clos) -> Self {
        Self::new(topo, usize::MAX, usize::MAX)
    }

    /// Try to reserve one s-rule entry on a leaf.
    pub fn alloc_leaf(&mut self, l: LeafId) -> bool {
        let used = &mut self.leaf_used[l.0 as usize];
        if *used < self.leaf_cap {
            *used += 1;
            metrics().leaf_allocs.inc();
            true
        } else {
            metrics().leaf_refused.inc();
            false
        }
    }

    /// Release one s-rule entry on a leaf.
    pub fn free_leaf(&mut self, l: LeafId) {
        let used = &mut self.leaf_used[l.0 as usize];
        debug_assert!(*used > 0, "freeing unallocated leaf s-rule");
        *used = used.saturating_sub(1);
    }

    /// Try to reserve one s-rule entry on every spine of a pod.
    pub fn alloc_pod(&mut self, p: PodId) -> bool {
        let used = &mut self.pod_used[p.0 as usize];
        if *used < self.spine_cap {
            *used += 1;
            metrics().pod_allocs.inc();
            true
        } else {
            metrics().pod_refused.inc();
            false
        }
    }

    /// Release one s-rule entry on every spine of a pod.
    pub fn free_pod(&mut self, p: PodId) {
        let used = &mut self.pod_used[p.0 as usize];
        debug_assert!(*used > 0, "freeing unallocated pod s-rule");
        *used = used.saturating_sub(1);
    }

    /// Entries used on one leaf.
    pub fn leaf_usage(&self, l: LeafId) -> usize {
        self.leaf_used[l.0 as usize]
    }

    /// Entries used on each spine of a pod.
    pub fn pod_usage(&self, p: PodId) -> usize {
        self.pod_used[p.0 as usize]
    }

    /// Per-leaf usage across the fabric.
    pub fn leaf_usages(&self) -> &[usize] {
        &self.leaf_used
    }

    /// Per-pod usage (each of the pod's spines holds this many entries).
    pub fn pod_usages(&self) -> &[usize] {
        &self.pod_used
    }

    /// Per-leaf group-table capacity (`Fmax`).
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Per-spine group-table capacity (`Fmax`).
    pub fn spine_capacity(&self) -> usize {
        self.spine_cap
    }
}

/// Summary statistics over a usage vector.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct UsageStats {
    pub mean: f64,
    pub p95: usize,
    pub max: usize,
}

impl UsageStats {
    /// Mean / 95th-percentile / max of a usage distribution.
    pub fn of(usages: &[usize]) -> UsageStats {
        if usages.is_empty() {
            return UsageStats {
                mean: 0.0,
                p95: 0,
                max: 0,
            };
        }
        let mut sorted: Vec<usize> = usages.to_vec();
        sorted.sort_unstable();
        let mean = sorted.iter().sum::<usize>() as f64 / sorted.len() as f64;
        let p95 = sorted[((sorted.len() - 1) as f64 * 0.95).round() as usize];
        let max = *sorted.last().expect("non-empty");
        UsageStats { mean, p95, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let topo = Clos::paper_example();
        let mut s = SRuleSpace::new(&topo, 2, 1);
        assert!(s.alloc_leaf(LeafId(3)));
        assert!(s.alloc_leaf(LeafId(3)));
        assert!(!s.alloc_leaf(LeafId(3)), "leaf at capacity");
        assert_eq!(s.leaf_usage(LeafId(3)), 2);
        s.free_leaf(LeafId(3));
        assert!(s.alloc_leaf(LeafId(3)));
        assert!(s.alloc_pod(PodId(1)));
        assert!(!s.alloc_pod(PodId(1)), "pod at spine capacity");
        s.free_pod(PodId(1));
        assert_eq!(s.pod_usage(PodId(1)), 0);
    }

    #[test]
    fn unlimited_never_refuses() {
        let topo = Clos::paper_example();
        let mut s = SRuleSpace::unlimited(&topo);
        for _ in 0..100_000 {
            assert!(s.alloc_leaf(LeafId(0)));
        }
    }

    #[test]
    fn usage_stats() {
        let stats = UsageStats::of(&[0, 0, 0, 10, 100]);
        assert!((stats.mean - 22.0).abs() < 1e-9);
        assert_eq!(stats.max, 100);
        assert_eq!(stats.p95, 100);
        let empty = UsageStats::of(&[]);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn stats_p95_on_uniform() {
        let usages: Vec<usize> = (0..100).collect();
        let stats = UsageStats::of(&usages);
        assert_eq!(stats.p95, 94);
        assert_eq!(stats.max, 99);
    }
}
