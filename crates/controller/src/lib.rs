//! # elmo-controller — the logically-centralized control plane
//!
//! Owns multicast group state for every tenant: membership (per-host VM
//! counts and roles), the group's receiver tree, its p-/s-rule encoding from
//! Algorithm 1, and provider-assigned outer addresses. Exposes the paper's
//! control-plane operations:
//!
//! * [`Controller::create_group`] / [`Controller::join`] /
//!   [`Controller::leave`] — membership management returning the exact
//!   [`UpdateSet`] of devices that must be reprogrammed (Table 2's metric);
//! * [`Controller::handle_spine_failure`] /
//!   [`Controller::handle_core_failure`] — failure reconfiguration via
//!   explicit upstream ports, with unicast fallback when set cover cannot
//!   reach every member (§3.3, §5.1.3b);
//! * [`Controller::header_for`] — the per-sender packet header hypervisors
//!   encapsulate with.
#![forbid(unsafe_code)]

pub mod attribution;
pub mod batch;
pub mod controller;
pub mod delta;
pub mod failures;
pub mod srules;

pub use attribution::RuleAttribution;
pub use batch::{encode_batch, encode_batch_cached, optimistic_reqs, BatchOutcome, SRuleReq};
pub use controller::{
    Controller, ControllerConfig, GroupId, GroupSpec, GroupState, MemberCounts, MemberRole,
    UpdateSet,
};
pub use delta::ChurnStats;
pub use failures::FailureImpact;
pub use srules::{SRuleSpace, UsageStats};
