//! The incremental churn engine: delta re-encode for membership changes.
//!
//! Most join/leave events in a churn-dominated workload (paper §5.1.3a)
//! flip one bit of one leaf's input bitmap without changing which leaves
//! or pods participate in the group. For those, re-running Algorithm 1 —
//! rebuilding the receiver tree, refilling layer inputs, re-clustering,
//! freeing and re-admitting s-rules — is almost entirely wasted work.
//!
//! This module classifies each receiver-tree change against the group's
//! live state *before* mutating anything:
//!
//! * **Structural** — the edited host's leaf joins or leaves the tree
//!   (pod changes are implied): the set of layer inputs changes, so the
//!   event escalates to the full re-encoder.
//! * **Eligible** — the leaf set is preserved. A single-leaf group is a
//!   trivial delta hit (both downstream layers are and remain empty).
//!   Otherwise [`elmo_core::try_patch_layer`] proves the stored leaf layer
//!   is the canonical parsimonious encoding and patches the edited leaf's
//!   rule in place — rewriting its bitmap or moving it between equality
//!   classes, re-chunking oversized classes exactly as the fast path
//!   would — refusing whenever the result could diverge from a
//!   from-scratch encode (header pressure, a header-pressed layer with
//!   s-rules or lossy shared rules).
//!
//! The spine layer is never patched: with the leaf set unchanged, its
//! inputs — per-pod leaf port sets — are unchanged, and with the spine
//! section unchanged the leaf layer's bit budget is unchanged too.
//! s-rule occupancy is untouched on the patch path (eligibility requires a
//! spill-free layer), so `SRuleSpace` accounting needs no adjustment.
//!
//! Every patch is bit-identical to what the full path would have produced;
//! `tests/churn_delta.rs` holds the controller to that at every prefix of
//! seeded churn streams, against fresh `create_group` rebuilds and across
//! batch-admission thread counts.

use elmo_core::{EncoderConfig, HeaderLayout, PatchRefusal, PatchScratch, PortBitmap};
use elmo_topology::{Clos, HostId, LeafId};

use crate::controller::GroupState;

/// Deterministic per-controller churn counters, mirrored into the global
/// `churn.*` obs counters. Local copies let harnesses compare delta-on and
/// delta-off controllers in one process without snapshot arithmetic.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ChurnStats {
    /// Receiver-tree changes absorbed by the delta path.
    pub delta_hits: u64,
    /// Receiver-tree changes that ran the full re-encoder (structural
    /// escalations plus patch refusals, or every change when the delta
    /// path is disabled).
    pub full_reencodes: u64,
    /// Full re-encodes caused by a leaf or pod appearing or vanishing.
    pub structural_escalations: u64,
}

impl ChurnStats {
    /// Total receiver-tree changes processed.
    pub fn tree_changes(&self) -> u64 {
        self.delta_hits + self.full_reencodes
    }
}

/// Obs counters for the churn engine (declared in
/// `elmo_sim::obs::REQUIRED_METRICS`). All increments happen on the
/// sequential membership path, so they are deterministic.
pub(crate) struct ChurnMetrics {
    pub delta_hit: elmo_obs::Counter,
    pub full_reencode: elmo_obs::Counter,
    pub structural_escalation: elmo_obs::Counter,
}

pub(crate) fn metrics() -> &'static ChurnMetrics {
    static M: std::sync::OnceLock<ChurnMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ChurnMetrics {
        delta_hit: elmo_obs::counter("churn.delta_hit"),
        full_reencode: elmo_obs::counter("churn.full_reencode"),
        structural_escalation: elmo_obs::counter("churn.structural_escalations"),
    })
}

/// Reusable bitmap buffers for the delta path; one pair per controller
/// keeps the hit path allocation-free after warm-up.
#[derive(Clone, Default, Debug)]
pub(crate) struct DeltaScratch {
    /// The edited leaf's new input bitmap.
    nb: PortBitmap,
    /// Patcher-internal buffers (member probes, class grouping, re-chunk).
    patch: PatchScratch,
}

/// Establish the parsimony certificate for a freshly encoded group: whether
/// its leaf layer is exactly the canonical fast-path encoding of its tree.
/// One O(members) probe pass per full encode buys probe-free
/// ([`elmo_core::Trust::Certified`]) patches for every subsequent
/// non-structural membership event until the next full re-encode.
pub(crate) fn certify_leaf_parsimony(
    topo: &Clos,
    layout: &HeaderLayout,
    encoder: &EncoderConfig,
    tree: &elmo_topology::GroupTree,
    enc: &elmo_core::GroupEncoding,
    scratch: &mut DeltaScratch,
) -> bool {
    if tree.num_leaves() <= 1 {
        // No downstream leaf layer; trivially canonical.
        return true;
    }
    let width = topo.leaf_down_ports();
    let cfg = elmo_core::leaf_layer_cfg(layout, encoder, &enc.d_spine);
    elmo_core::layer_is_parsimonious(
        &enc.d_leaf,
        &mut |sw, buf| {
            buf.reset(width);
            for &h in tree.hosts_on_leaf(LeafId(sw)) {
                buf.set(topo.host_port_on_leaf(h));
            }
        },
        &cfg,
        &mut scratch.patch,
    )
}

/// How one receiver-tree change was handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DeltaOutcome {
    /// State was patched in place; tree and encoding are already final.
    Patched,
    /// A leaf/pod appeared or vanished: caller must re-encode fully.
    Structural,
    /// Patch eligibility failed: caller must re-encode fully.
    Refused(PatchRefusal),
}

/// Attempt the delta path for a receiver-tree change at `host`.
///
/// Must be called *before* the tree is rebuilt: classification and shape
/// verification read the pre-change tree, and on success the tree is
/// edited in place. On `Structural`/`Refused` nothing was modified.
pub(crate) fn try_apply(
    topo: &Clos,
    layout: &HeaderLayout,
    encoder: &EncoderConfig,
    state: &mut GroupState,
    host: HostId,
    joining: bool,
    scratch: &mut DeltaScratch,
) -> DeltaOutcome {
    let leaf = topo.leaf_of_host(host);
    let structural = if joining {
        !state.tree.has_leaf(leaf)
    } else {
        state.tree.hosts_on_leaf(leaf).len() == 1
    };
    if structural {
        return DeltaOutcome::Structural;
    }

    let GroupState {
        tree,
        enc,
        leaf_parsimonious,
        ..
    } = state;
    if tree.num_leaves() <= 1 {
        // Single-leaf tree staying single-leaf: both downstream layers are
        // empty and stay empty, so the encoding is already correct. Only
        // headers change (upstream leaf rule and per-sender synthesized
        // rules), which the caller covers with sender fan-out.
        debug_assert!(enc.d_leaf.p_rules.is_empty() && enc.d_leaf.s_rules.is_empty());
        apply_tree_edit(topo, tree, host, joining);
        return DeltaOutcome::Patched;
    }
    if !*leaf_parsimonious {
        // No standing certificate (the last full encode was header-pressed,
        // or ran while the delta path was disabled): a patch would have to
        // re-prove the layer shape with per-member probes, costing nearly a
        // full re-encode. Escalate instead; the re-encode re-certifies.
        return DeltaOutcome::Refused(PatchRefusal::NotParsimonious);
    }

    // The edited leaf's new input: its current member ports with the host's
    // port flipped.
    let DeltaScratch { nb, patch } = scratch;
    let width = topo.leaf_down_ports();
    nb.reset(width);
    for &h in tree.hosts_on_leaf(leaf) {
        nb.set(topo.host_port_on_leaf(h));
    }
    let port = topo.host_port_on_leaf(host);
    if joining {
        debug_assert!(!nb.get(port), "joining host already on its leaf");
        nb.set(port);
    } else {
        debug_assert!(nb.get(port), "leaving host missing from its leaf");
        nb.clear(port);
    }

    // With the leaf set unchanged the spine inputs are unchanged, so the
    // live spine section stays valid and pins the leaf layer's bit budget.
    // The standing certificate lets the patcher skip re-verification
    // entirely (`Trust::Certified` — locate-only, no per-member probes):
    // a successful patch lands on the canonical encoding of the new
    // inputs, so the certificate survives it.
    let cfg = elmo_core::leaf_layer_cfg(layout, encoder, &enc.d_spine);
    let patched = elmo_core::try_patch_layer(
        &mut enc.d_leaf,
        leaf.0,
        nb,
        &mut |sw, buf| {
            buf.reset(width);
            for &h in tree.hosts_on_leaf(LeafId(sw)) {
                buf.set(topo.host_port_on_leaf(h));
            }
        },
        &cfg,
        elmo_core::Trust::Certified,
        patch,
    );
    match patched {
        Ok(()) => {
            apply_tree_edit(topo, tree, host, joining);
            DeltaOutcome::Patched
        }
        Err(refusal) => DeltaOutcome::Refused(refusal),
    }
}

/// Commit the membership edit to the tree in place. The classifier already
/// proved the edit is non-structural, and the membership counts proved the
/// host's presence actually changes.
fn apply_tree_edit(topo: &Clos, tree: &mut elmo_topology::GroupTree, host: HostId, joining: bool) {
    let edit = if joining {
        tree.add_host(topo, host)
    } else {
        tree.remove_host(topo, host)
    }
    .expect("membership counts said the host's tree presence changes");
    debug_assert!(!edit.structural(), "classifier admits only in-place edits");
}
