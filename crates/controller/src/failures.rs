//! Failure handling (paper §3.3, §5.1.3b).
//!
//! When a spine or core fails, groups whose in-use paths traversed it need
//! new upstream p-rules: the controller disables the multipath flag and
//! writes explicit upstream ports computed by greedy set cover, updating
//! only the affected *sender hypervisors* — network switches need no rule
//! changes, which is the point of source routing. Groups whose members
//! become unreachable degrade to unicast until the network reconverges.
//!
//! Which groups count as *affected* follows the paper's simulation: each
//! (group, sender pod) pair has a deterministic in-use upstream spine (its
//! ECMP choice), which fixes the core plane the flow crosses and therefore
//! the attach spine in every receiver pod. A switch failure affects the
//! group if any of those in-use devices is the failed one.

use std::collections::BTreeMap;

use elmo_topology::{CoreId, HostId, PodId, SpineId, UpstreamCover};

use crate::controller::{Controller, GroupId, GroupState};

/// Failure-handling counters (all recorded from sequential recompute).
struct FailMetrics {
    spine_failures: elmo_obs::Counter,
    core_failures: elmo_obs::Counter,
    groups_rerouted: elmo_obs::Counter,
    degraded_to_unicast: elmo_obs::Counter,
    hypervisor_updates: elmo_obs::Counter,
}

fn metrics() -> &'static FailMetrics {
    static M: std::sync::OnceLock<FailMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| FailMetrics {
        spine_failures: elmo_obs::counter("controller.failures.spine"),
        core_failures: elmo_obs::counter("controller.failures.core"),
        groups_rerouted: elmo_obs::counter("controller.failures.groups_rerouted"),
        degraded_to_unicast: elmo_obs::counter("controller.failures.degraded_to_unicast"),
        hypervisor_updates: elmo_obs::counter("controller.failures.hypervisor_updates"),
    })
}

/// Outcome of processing one switch failure.
#[derive(Clone, Debug, Default)]
pub struct FailureImpact {
    /// Groups whose in-use paths traversed the failed switch.
    pub affected_groups: usize,
    /// Total groups managed when the failure hit.
    pub total_groups: usize,
    /// Updates pushed to each hypervisor (new upstream p-rules per group).
    pub hypervisor_updates: BTreeMap<HostId, u32>,
    /// Groups degraded to unicast because no cover could reach all members.
    pub degraded_to_unicast: usize,
}

impl FailureImpact {
    /// Fraction of groups affected.
    pub fn affected_fraction(&self) -> f64 {
        if self.total_groups == 0 {
            0.0
        } else {
            self.affected_groups as f64 / self.total_groups as f64
        }
    }

    /// Mean updates per hypervisor that received at least one update.
    pub fn mean_updates_per_hypervisor(&self) -> f64 {
        if self.hypervisor_updates.is_empty() {
            return 0.0;
        }
        self.hypervisor_updates
            .values()
            .map(|&v| v as u64)
            .sum::<u64>() as f64
            / self.hypervisor_updates.len() as f64
    }

    /// Max updates any single hypervisor received.
    pub fn max_updates_per_hypervisor(&self) -> u32 {
        self.hypervisor_updates.values().copied().max().unwrap_or(0)
    }
}

/// The in-use upstream spine (local index) for a (group, sender-pod) pair —
/// the deterministic stand-in for the flow's ECMP choice.
fn chosen_plane(group: GroupId, pod: PodId, planes: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in group.0.to_be_bytes().into_iter().chain(pod.0.to_be_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % planes as u64) as usize
}

impl Controller {
    /// The representative flow's sender pod: the group's first sender host
    /// (or first member if the group has no dedicated senders). Impact
    /// accounting follows the paper's simulation in treating each group as
    /// one in-use tree rather than one per sender.
    fn flow_pod(&self, state: &GroupState) -> Option<PodId> {
        state
            .sender_hosts()
            .next()
            .or_else(|| state.members.keys().next().copied())
            .map(|h| self.topo().pod_of_host(h))
    }

    /// The spine planes a sender pod's flows actually use: the explicit
    /// cover's uplinks when one is installed, otherwise the single ECMP
    /// choice.
    fn used_planes(&self, state: &GroupState, pod: PodId) -> Vec<usize> {
        match state.covers.get(&pod) {
            Some(c) if !c.leaf_up_ports.is_empty() => c.leaf_up_ports.clone(),
            _ => vec![chosen_plane(
                state.id,
                pod,
                self.topo().params().spines_per_pod,
            )],
        }
    }

    /// The cores a sender pod's flows use to leave the pod.
    fn used_cores(&self, state: &GroupState, pod: PodId) -> Vec<CoreId> {
        let cps = self.topo().cores_per_spine();
        match state.covers.get(&pod) {
            Some(c) if !c.leaf_up_ports.is_empty() => {
                let mut cores = Vec::new();
                for &plane in &c.leaf_up_ports {
                    if c.spine_up_ports.is_empty() {
                        // Covers without core ports only serve local leaves.
                        continue;
                    }
                    for &w in &c.spine_up_ports {
                        cores.push(CoreId((plane * cps + w) as u32));
                    }
                }
                cores
            }
            _ => {
                let plane = chosen_plane(state.id, pod, self.topo().params().spines_per_pod);
                let within = chosen_plane(state.id, PodId(pod.0 ^ 0x5a5a), cps.max(1));
                vec![CoreId((plane * cps + within) as u32)]
            }
        }
    }

    /// Whether the group's in-use tree traverses `failed` (a spine).
    fn group_uses_spine(&self, state: &GroupState, failed: SpineId) -> bool {
        let topo = self.topo();
        let failed_pod = topo.pod_of_spine(failed);
        let failed_plane = topo.spine_index_in_pod(failed);
        let Some(a) = self.flow_pod(state) else {
            return false;
        };
        // The tree only leaves the sender's leaf when there are receivers
        // beyond it; single-leaf groups never touch spines.
        if state.tree.num_leaves() <= 1 && state.tree.leaves_in_pod(a).len() <= 1 {
            let only_leaf = state.tree.leaves().next();
            let sender_leaf = state
                .sender_hosts()
                .next()
                .or_else(|| state.members.keys().next().copied())
                .map(|h| topo.leaf_of_host(h));
            if only_leaf == sender_leaf {
                return false;
            }
        }
        for plane in self.used_planes(state, a) {
            // Upstream: the sender pod's chosen spine.
            if a == failed_pod && plane == failed_plane {
                return true;
            }
            // Downstream: the flow enters every remote receiver pod through
            // the attach spine of its core plane.
            if a != failed_pod && plane == failed_plane && state.tree.has_pod(failed_pod) {
                return true;
            }
        }
        false
    }

    /// Whether the group's in-use tree traverses `failed` (a core).
    fn group_uses_core(&self, state: &GroupState, failed: CoreId) -> bool {
        let Some(a) = self.flow_pod(state) else {
            return false;
        };
        // The core is only traversed when the group spans beyond pod `a`.
        if !state.tree.pods().any(|p| p != a) {
            return false;
        }
        self.used_cores(state, a).contains(&failed)
    }

    /// Process a spine failure: recompute upstream covers for affected
    /// groups, mark unreachable ones for unicast fallback, and report the
    /// per-hypervisor update load.
    pub fn handle_spine_failure(&mut self, failed: SpineId) -> FailureImpact {
        metrics().spine_failures.inc();
        self.failures_mut().fail_spine(failed);
        let impact = self.recompute_after_failure(|ctl, state| ctl.group_uses_spine(state, failed));
        elmo_obs::debug!(
            "failure.spine",
            spine = failed.0,
            affected = impact.affected_groups,
            total = impact.total_groups,
            degraded = impact.degraded_to_unicast,
        );
        impact
    }

    /// Process a core failure (same flow as [`Self::handle_spine_failure`]).
    pub fn handle_core_failure(&mut self, failed: CoreId) -> FailureImpact {
        metrics().core_failures.inc();
        self.failures_mut().fail_core(failed);
        let impact = self.recompute_after_failure(|ctl, state| ctl.group_uses_core(state, failed));
        elmo_obs::debug!(
            "failure.core",
            core = failed.0,
            affected = impact.affected_groups,
            total = impact.total_groups,
            degraded = impact.degraded_to_unicast,
        );
        impact
    }

    fn recompute_after_failure(
        &mut self,
        affected: impl Fn(&Controller, &GroupState) -> bool,
    ) -> FailureImpact {
        let mut impact = FailureImpact {
            total_groups: self.group_count(),
            ..Default::default()
        };
        let ids: Vec<GroupId> = self.groups().map(|g| g.id).collect();
        for id in ids {
            let state = self.group(id).expect("listed group");
            if !affected(self, state) {
                continue;
            }
            impact.affected_groups += 1;
            metrics().groups_rerouted.inc();
            // Compute a new explicit cover per sender pod.
            let topo = *self.topo();
            let failures = self.failures().clone();
            let state = self.group_mut(id).expect("listed group");
            let sender_hosts: Vec<HostId> = state.sender_hosts().collect();
            let mut degraded = false;
            let mut covers = BTreeMap::new();
            let mut sender_pods: Vec<PodId> =
                sender_hosts.iter().map(|&h| topo.pod_of_host(h)).collect();
            sender_pods.sort_unstable();
            sender_pods.dedup();
            for pod in sender_pods {
                let local_leaves = state
                    .tree
                    .leaves_in_pod(pod)
                    .iter()
                    .any(|&l| sender_hosts.iter().any(|&h| topo.leaf_of_host(h) != l));
                let cover =
                    UpstreamCover::compute(&topo, &failures, &state.tree, pod, local_leaves);
                if !cover.complete {
                    degraded = true;
                }
                covers.insert(pod, cover);
            }
            state.covers = covers;
            state.unicast_fallback = degraded;
            if degraded {
                impact.degraded_to_unicast += 1;
                metrics().degraded_to_unicast.inc();
            }
            // Every sender hypervisor re-encapsulates with the new upstream
            // rules.
            for h in sender_hosts {
                *impact.hypervisor_updates.entry(h).or_insert(0) += 1;
                metrics().hypervisor_updates.inc();
            }
        }
        impact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{ControllerConfig, MemberRole};
    use elmo_net::vxlan::Vni;
    use elmo_topology::Clos;
    use std::net::Ipv4Addr;

    fn controller_with_groups(n: u64) -> Controller {
        let topo = Clos::paper_example();
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(2));
        for g in 0..n {
            // Spread groups over hosts deterministically; members both send
            // and receive.
            let base = (g * 7) % 48;
            let members = [
                (HostId(base as u32), MemberRole::Both),
                (HostId((base as u32 + 9) % 64), MemberRole::Both),
                (HostId((base as u32 + 33) % 64), MemberRole::Both),
            ];
            ctl.create_group(
                GroupId(g),
                Vni(1),
                Ipv4Addr::new(225, 0, (g >> 8) as u8, g as u8),
                members,
            );
        }
        ctl
    }

    #[test]
    fn spine_failure_affects_a_strict_subset() {
        let mut ctl = controller_with_groups(64);
        let impact = ctl.handle_spine_failure(SpineId(0));
        assert_eq!(impact.total_groups, 64);
        assert!(impact.affected_groups > 0, "some groups use spine 0");
        assert!(impact.affected_groups < 64, "not all groups use spine 0");
        assert!(impact.affected_fraction() > 0.0 && impact.affected_fraction() < 1.0);
    }

    #[test]
    fn affected_groups_get_sender_updates() {
        let mut ctl = controller_with_groups(32);
        let impact = ctl.handle_spine_failure(SpineId(1));
        if impact.affected_groups > 0 {
            assert!(!impact.hypervisor_updates.is_empty());
            assert!(impact.mean_updates_per_hypervisor() >= 1.0);
            assert!(impact.max_updates_per_hypervisor() >= 1);
        }
    }

    #[test]
    fn covers_are_installed_and_complete_without_partition() {
        let mut ctl = controller_with_groups(32);
        let impact = ctl.handle_spine_failure(SpineId(0));
        // One spine down out of two per pod: everything still reachable.
        assert_eq!(impact.degraded_to_unicast, 0);
        let mut explicit = 0;
        for g in ctl.groups() {
            for c in g.covers.values() {
                assert!(c.complete);
                if !c.leaf_up_ports.is_empty() {
                    explicit += 1;
                }
            }
        }
        assert!(explicit > 0, "affected groups carry explicit covers");
    }

    #[test]
    fn total_partition_degrades_to_unicast() {
        let topo = Clos::paper_example();
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(2));
        // Group spanning pods 0 and 2; senders in pod 0.
        ctl.create_group(
            GroupId(1),
            Vni(1),
            Ipv4Addr::new(225, 0, 0, 1),
            [
                (HostId(0), MemberRole::Both),
                (HostId(40), MemberRole::Receiver),
            ],
        );
        // Kill both spines of pod 2: pod 2 is unreachable.
        ctl.handle_spine_failure(SpineId(4));
        let impact = ctl.handle_spine_failure(SpineId(5));
        // Whichever of the two failure events hit the group's chosen plane,
        // by the second event the group must be degraded.
        let g = ctl.group(GroupId(1)).unwrap();
        assert!(g.unicast_fallback);
        assert!(impact.total_groups == 1);
    }

    #[test]
    fn core_failure_affects_only_multi_pod_groups() {
        let topo = Clos::paper_example();
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(2));
        // Group A: single-leaf (never leaves the rack).
        ctl.create_group(
            GroupId(1),
            Vni(1),
            Ipv4Addr::new(225, 0, 0, 1),
            [
                (HostId(0), MemberRole::Both),
                (HostId(1), MemberRole::Receiver),
            ],
        );
        // Groups B..: cross-pod, one per core plane hash.
        for g in 2..10 {
            ctl.create_group(
                GroupId(g),
                Vni(1),
                Ipv4Addr::new(225, 0, 0, g as u8),
                [
                    (HostId(0), MemberRole::Both),
                    (HostId(40 + g as u32), MemberRole::Receiver),
                ],
            );
        }
        let mut affected_total = 0;
        for c in 0..4u32 {
            let impact = ctl.handle_core_failure(CoreId(c));
            affected_total += impact.affected_groups;
            // The single-leaf group is never affected.
            assert!(!ctl.group(GroupId(1)).unwrap().unicast_fallback || c > 0);
        }
        assert!(
            affected_total >= 8,
            "every cross-pod group hit by some core failure"
        );
    }
}
