//! Two-phase deterministic batch encoding (the parallel encode pipeline).
//!
//! Per-group encoding is embarrassingly parallel except for one shared
//! resource: the fabric-wide s-rule budget ([`SRuleSpace`], per-switch
//! `Fmax`). Running Algorithm 1 for many groups concurrently against a
//! shared tracker would make results depend on thread interleaving, so the
//! pipeline splits the work:
//!
//! * **Phase 1 (parallel)** — encode every group *optimistically*, assuming
//!   every s-rule allocation succeeds, while recording the exact sequence of
//!   capacity requests Algorithm 1 issued ([`encode_group_optimistic`]).
//! * **Phase 2 (sequential, group order)** — replay each group's requests
//!   into the real [`SRuleSpace`] in group order ([`try_admit`]). If every
//!   request is granted — always true with unlimited `Fmax`, the paper's
//!   main configuration — the optimistic encoding *is* the serial encoding,
//!   because Algorithm 1's control flow only observes allocation results.
//!   If any request is refused, the group's trial reservations are rolled
//!   back and the group is re-encoded serially against the live tracker
//!   ([`encode_group_admitted`]), reproducing the serial path exactly —
//!   including the subtle coupling where a refused *spine* allocation grows
//!   the spine default rule and thereby shrinks the leaf layer's bit budget.
//!
//! The result is byte-identical to a serial group-by-group encode at any
//! thread count; the determinism test in `tests/parallel_determinism.rs`
//! checks this on both unlimited and capacity-limited configurations.

use std::cell::RefCell;
use std::sync::OnceLock;

use elmo_core::{
    encode_group_with, CacheOutcome, CacheShard, EncodeCache, EncodeScratch, EncoderConfig,
    GroupEncoding,
};
use elmo_topology::{Clos, GroupTree, LeafId, PodId};

use crate::srules::SRuleSpace;

/// Batch-pipeline metrics. Counters are recorded from both parallel
/// (phase 1) and sequential (phase 2) code — commutative sums, so totals
/// are identical at any thread count. The wall-clock spans live under the
/// nondeterministic `span.` namespace.
pub(crate) struct BatchMetrics {
    pub(crate) groups: elmo_obs::Counter,
    pub(crate) optimistic_encodes: elmo_obs::Counter,
    pub(crate) admitted: elmo_obs::Counter,
    pub(crate) reencoded: elmo_obs::Counter,
    pub(crate) cache_hit: elmo_obs::Counter,
    pub(crate) cache_miss: elmo_obs::Counter,
}

pub(crate) fn metrics() -> &'static BatchMetrics {
    static M: OnceLock<BatchMetrics> = OnceLock::new();
    M.get_or_init(|| BatchMetrics {
        groups: elmo_obs::counter("controller.batch.groups"),
        optimistic_encodes: elmo_obs::counter("controller.batch.optimistic_encodes"),
        admitted: elmo_obs::counter("controller.batch.admitted"),
        reencoded: elmo_obs::counter("controller.batch.reencoded"),
        cache_hit: elmo_obs::counter("encode.cache_hit"),
        cache_miss: elmo_obs::counter("encode.cache_miss"),
    })
}

/// One s-rule capacity request recorded during an optimistic encode, in the
/// order Algorithm 1 issues it against a live tracker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SRuleReq {
    /// One group-table entry on every spine of the pod.
    Pod(PodId),
    /// One group-table entry on the leaf.
    Leaf(LeafId),
}

/// Phase 1: encode one group assuming unlimited s-rule capacity, recording
/// every allocation Algorithm 1 would have made into `reqs` (cleared first).
pub fn encode_group_optimistic(
    topo: &Clos,
    tree: &GroupTree,
    cfg: &EncoderConfig,
    scratch: &mut EncodeScratch,
    reqs: &mut Vec<SRuleReq>,
) -> GroupEncoding {
    reqs.clear();
    let cell = RefCell::new(reqs);
    let mut spine_alloc = |p: PodId| {
        cell.borrow_mut().push(SRuleReq::Pod(p));
        true
    };
    let mut leaf_alloc = |l: LeafId| {
        cell.borrow_mut().push(SRuleReq::Leaf(l));
        true
    };
    encode_group_with(topo, tree, cfg, &mut spine_alloc, &mut leaf_alloc, scratch)
}

/// Derive the s-rule request sequence of an *optimistic* encoding from the
/// encoding itself (cleared into `reqs`).
///
/// With every allocation granted, Algorithm 1 only calls the allocator in
/// its final fallback loop — once per s-rule, in ascending input order,
/// spine layer before leaf layer — so the recorded request sequence is
/// exactly the encoding's `s_rules` lists in order. This lets the cached
/// phase-1 path skip the callback plumbing entirely; equality with the
/// callback-recorded sequence is pinned by a test below.
pub fn optimistic_reqs(enc: &GroupEncoding, reqs: &mut Vec<SRuleReq>) {
    reqs.clear();
    reqs.extend(
        enc.d_spine
            .s_rules
            .iter()
            .map(|(p, _)| SRuleReq::Pod(PodId(*p))),
    );
    reqs.extend(
        enc.d_leaf
            .s_rules
            .iter()
            .map(|(l, _)| SRuleReq::Leaf(LeafId(*l))),
    );
}

/// Phase 1 through the structural encoding cache: optimistic encode (served
/// from `base`/`shard` on a signature hit) plus the derived request
/// sequence. Outcomes accumulate in `outcomes` for phase-2 accounting.
#[allow(clippy::too_many_arguments)]
pub fn encode_group_optimistic_cached(
    topo: &Clos,
    tree: &GroupTree,
    cfg: &EncoderConfig,
    scratch: &mut EncodeScratch,
    base: &EncodeCache,
    shard: &mut CacheShard,
    outcomes: &mut Vec<CacheOutcome>,
    reqs: &mut Vec<SRuleReq>,
) -> GroupEncoding {
    let enc =
        elmo_core::encode_group_optimistic_cached(topo, tree, cfg, scratch, base, shard, outcomes);
    optimistic_reqs(&enc, reqs);
    enc
}

/// Phase 2 admission: try to reserve every recorded request, in order.
/// All-or-nothing — on the first refusal every reservation made for this
/// group is rolled back and `false` is returned, leaving `srules` exactly
/// as it was so the caller can re-encode against the pre-group state.
pub fn try_admit(srules: &mut SRuleSpace, reqs: &[SRuleReq]) -> bool {
    for (i, req) in reqs.iter().enumerate() {
        let granted = match *req {
            SRuleReq::Pod(p) => srules.alloc_pod(p),
            SRuleReq::Leaf(l) => srules.alloc_leaf(l),
        };
        if !granted {
            for r in &reqs[..i] {
                match *r {
                    SRuleReq::Pod(p) => srules.free_pod(p),
                    SRuleReq::Leaf(l) => srules.free_leaf(l),
                }
            }
            return false;
        }
    }
    true
}

/// Serial-path encode against the live tracker, used when admission fails.
/// Partial allocations stick even when later ones are refused — exactly the
/// semantics of encoding this group serially at this point in the order.
pub fn encode_group_admitted(
    topo: &Clos,
    tree: &GroupTree,
    cfg: &EncoderConfig,
    srules: &mut SRuleSpace,
    scratch: &mut EncodeScratch,
) -> GroupEncoding {
    let cell = RefCell::new(srules);
    let mut spine_alloc = |p: PodId| cell.borrow_mut().alloc_pod(p);
    let mut leaf_alloc = |l: LeafId| cell.borrow_mut().alloc_leaf(l);
    encode_group_with(topo, tree, cfg, &mut spine_alloc, &mut leaf_alloc, scratch)
}

/// Outcome of [`encode_batch`] / [`encode_batch_cached`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// One encoding per input tree, in input order.
    pub encodings: Vec<GroupEncoding>,
    /// How many groups failed optimistic admission and were re-encoded
    /// serially (0 whenever `Fmax` is unlimited).
    pub reencoded: usize,
    /// Structural-cache layer hits this batch (serial-order accounting,
    /// identical at any thread count).
    pub cache_hits: u64,
    /// Structural-cache layer misses this batch.
    pub cache_misses: u64,
}

/// Encode a batch of group trees with the two-phase pipeline, reusing (and
/// extending) a caller-held structural encoding cache across batches. The
/// final `srules` occupancy and every returned encoding are byte-identical
/// to encoding the trees one by one in slice order on a single thread with
/// no cache; the `encode.cache_hit` / `encode.cache_miss` counters are
/// likewise identical at any thread count (outcomes are replayed in group
/// order against the frozen pre-batch cache).
pub fn encode_batch_cached(
    topo: &Clos,
    cfg: &EncoderConfig,
    srules: &mut SRuleSpace,
    trees: &[GroupTree],
    threads: usize,
    cache: &mut EncodeCache,
) -> BatchOutcome {
    let m = metrics();
    m.groups.add(trees.len() as u64);

    let phase1 = {
        let _span = elmo_obs::span!("batch_optimistic");
        let base: &EncodeCache = &*cache;
        elmo_core::parallel_map_with(
            trees.len(),
            threads,
            || {
                (
                    EncodeScratch::new(),
                    Vec::new(),
                    CacheShard::new(),
                    Vec::new(),
                )
            },
            |(scratch, reqs, shard, outcomes), i| {
                let enc = encode_group_optimistic_cached(
                    topo, &trees[i], cfg, scratch, base, shard, outcomes, reqs,
                );
                metrics().optimistic_encodes.inc();
                (enc, std::mem::take(reqs), std::mem::take(outcomes))
            },
        )
    };

    let _span = elmo_obs::span!("batch_admission");
    let mut reencoded = 0usize;
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    let mut scratch = EncodeScratch::new();
    let encodings = phase1
        .into_iter()
        .enumerate()
        .map(|(i, (enc, reqs, outcomes))| {
            let (hits, misses) = cache.absorb(outcomes);
            m.cache_hit.add(hits);
            m.cache_miss.add(misses);
            cache_hits += hits;
            cache_misses += misses;
            if try_admit(srules, &reqs) {
                m.admitted.inc();
                enc
            } else {
                reencoded += 1;
                m.reencoded.inc();
                encode_group_admitted(topo, &trees[i], cfg, srules, &mut scratch)
            }
        })
        .collect();
    if reencoded > 0 {
        elmo_obs::debug!(
            "batch.reencoded",
            groups = trees.len(),
            reencoded = reencoded
        );
    }
    BatchOutcome {
        encodings,
        reencoded,
        cache_hits,
        cache_misses,
    }
}

/// [`encode_batch_cached`] with a throwaway cache — the uncached entry
/// point (kept for callers that encode one batch and never again).
pub fn encode_batch(
    topo: &Clos,
    cfg: &EncoderConfig,
    srules: &mut SRuleSpace,
    trees: &[GroupTree],
    threads: usize,
) -> BatchOutcome {
    encode_batch_cached(topo, cfg, srules, trees, threads, &mut EncodeCache::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elmo_core::{HeaderLayout, SplitMix64};
    use elmo_topology::HostId;

    fn random_trees(topo: &Clos, n: usize, seed: u64) -> Vec<GroupTree> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let size = rng.range_inclusive(2, 24);
                let members: Vec<HostId> = (0..size)
                    .map(|_| HostId(rng.below(topo.num_hosts() as u64) as u32))
                    .collect();
                GroupTree::new(topo, members)
            })
            .collect()
    }

    /// Groups big enough that their leaf layers clear the cache's row gate
    /// ([`elmo_core::sig::CACHE_MIN_ROWS`]), on a fabric wide enough to
    /// have that many leaves. Each tree appears twice so repeated shapes
    /// actually occur.
    fn big_pressed_trees(topo: &Clos, n: usize, seed: u64) -> Vec<GroupTree> {
        let mut rng = SplitMix64::new(seed);
        let mut trees: Vec<GroupTree> = (0..n)
            .map(|_| {
                let size = rng.range_inclusive(100, 160);
                let members: Vec<HostId> = (0..size)
                    .map(|_| HostId(rng.below(topo.num_hosts() as u64) as u32))
                    .collect();
                GroupTree::new(topo, members)
            })
            .collect();
        trees.extend(trees.clone());
        trees
    }

    fn serial_reference(
        topo: &Clos,
        cfg: &EncoderConfig,
        srules: &mut SRuleSpace,
        trees: &[GroupTree],
    ) -> Vec<GroupEncoding> {
        let mut scratch = EncodeScratch::new();
        trees
            .iter()
            .map(|t| encode_group_admitted(topo, t, cfg, srules, &mut scratch))
            .collect()
    }

    #[test]
    fn optimistic_matches_serial_when_capacity_is_unlimited() {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        let cfg = EncoderConfig::with_budget(&layout, 48, 0);
        let trees = random_trees(&topo, 60, 0xA11C);
        for threads in [1, 2, 8] {
            let mut srules = SRuleSpace::unlimited(&topo);
            let out = encode_batch(&topo, &cfg, &mut srules, &trees, threads);
            assert_eq!(out.reencoded, 0, "unlimited capacity never re-encodes");
            let mut ref_srules = SRuleSpace::unlimited(&topo);
            let reference = serial_reference(&topo, &cfg, &mut ref_srules, &trees);
            assert_eq!(out.encodings, reference);
            assert_eq!(srules.leaf_usages(), ref_srules.leaf_usages());
            assert_eq!(srules.pod_usages(), ref_srules.pod_usages());
        }
    }

    #[test]
    fn capacity_pressure_reencodes_but_stays_identical_to_serial() {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        // Tiny header budget spills aggressively into s-rules; tiny Fmax
        // then forces admission failures and the re-encode path.
        let cfg = EncoderConfig::with_budget(&layout, 16, 0);
        let trees = random_trees(&topo, 80, 0xBEE);
        let mut any_reencoded = false;
        for threads in [1, 2, 8] {
            let mut srules = SRuleSpace::new(&topo, 3, 2);
            let out = encode_batch(&topo, &cfg, &mut srules, &trees, threads);
            any_reencoded |= out.reencoded > 0;
            let mut ref_srules = SRuleSpace::new(&topo, 3, 2);
            let reference = serial_reference(&topo, &cfg, &mut ref_srules, &trees);
            assert_eq!(out.encodings, reference, "threads={threads}");
            assert_eq!(srules.leaf_usages(), ref_srules.leaf_usages());
            assert_eq!(srules.pod_usages(), ref_srules.pod_usages());
        }
        assert!(
            any_reencoded,
            "test must actually exercise the re-encode path"
        );
    }

    #[test]
    fn try_admit_rolls_back_on_refusal() {
        let topo = Clos::paper_example();
        let mut srules = SRuleSpace::new(&topo, 1, 1);
        assert!(srules.alloc_leaf(LeafId(0))); // pre-fill leaf 0
        let reqs = [
            SRuleReq::Leaf(LeafId(1)),
            SRuleReq::Pod(PodId(0)),
            SRuleReq::Leaf(LeafId(0)), // refused: at capacity
        ];
        assert!(!try_admit(&mut srules, &reqs));
        assert_eq!(srules.leaf_usage(LeafId(1)), 0, "rolled back");
        assert_eq!(srules.pod_usage(PodId(0)), 0, "rolled back");
        assert_eq!(srules.leaf_usage(LeafId(0)), 1, "pre-existing kept");
    }

    #[test]
    fn derived_reqs_match_callback_recorded_reqs() {
        // `optimistic_reqs` reconstructs the request sequence from the
        // encoding; it must equal what the allocation callbacks record.
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        for budget in [16, 48, 325] {
            let cfg = EncoderConfig::with_budget(&layout, budget, 0);
            let trees = random_trees(&topo, 40, 0xD123 + budget as u64);
            let mut scratch = EncodeScratch::new();
            let mut recorded = Vec::new();
            let mut derived = Vec::new();
            for tree in &trees {
                let enc = encode_group_optimistic(&topo, tree, &cfg, &mut scratch, &mut recorded);
                optimistic_reqs(&enc, &mut derived);
                assert_eq!(derived, recorded);
            }
        }
    }

    #[test]
    fn cached_batch_is_bit_identical_and_counts_deterministically() {
        // Wide fabric + big groups: leaf layers span enough leaves to clear
        // the cache's row gate under a tight header budget.
        let topo = Clos::scaled_fabric(2, 24, 4);
        let layout = HeaderLayout::for_clos(&topo);
        let cfg = EncoderConfig::with_budget(&layout, 48, 6);
        let trees = big_pressed_trees(&topo, 12, 0xCAC4E);
        let mut srules = SRuleSpace::unlimited(&topo);
        let reference = encode_batch(&topo, &cfg, &mut srules, &trees, 1);
        let mut counts = Vec::new();
        for threads in [1, 2, 8] {
            let mut cache = EncodeCache::new();
            let mut srules = SRuleSpace::unlimited(&topo);
            let out = encode_batch_cached(&topo, &cfg, &mut srules, &trees, threads, &mut cache);
            assert_eq!(out.encodings, reference.encodings, "threads={threads}");
            assert!(!cache.is_empty());
            counts.push((out.cache_hits, out.cache_misses));
        }
        assert_eq!(counts[0], counts[1], "hit/miss counts depend on threads");
        assert_eq!(counts[0], counts[2], "hit/miss counts depend on threads");
        let (hits, misses) = counts[0];
        assert!(hits > 0, "repeated shapes must hit");
        assert!(misses > 0, "first sight of each shape must miss");
    }

    #[test]
    fn warm_cache_carries_across_batches() {
        let topo = Clos::scaled_fabric(2, 24, 4);
        let layout = HeaderLayout::for_clos(&topo);
        let cfg = EncoderConfig::with_budget(&layout, 48, 6);
        let trees = big_pressed_trees(&topo, 8, 0x77AB);
        let mut cache = EncodeCache::new();
        let mut srules = SRuleSpace::unlimited(&topo);
        let first = encode_batch_cached(&topo, &cfg, &mut srules, &trees, 2, &mut cache);
        let len_after_first = cache.len();
        assert!(len_after_first > 0, "first batch must populate the cache");
        let mut srules = SRuleSpace::unlimited(&topo);
        let second = encode_batch_cached(&topo, &cfg, &mut srules, &trees, 2, &mut cache);
        assert_eq!(first.encodings, second.encodings);
        assert_eq!(cache.len(), len_after_first, "no new shapes on a rerun");
        assert_eq!(second.cache_misses, 0, "zero misses on a warm rerun");
        assert_eq!(
            second.cache_hits,
            first.cache_hits + first.cache_misses,
            "every layer hits on a warm rerun"
        );
    }

    #[test]
    fn empty_batch() {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        let cfg = EncoderConfig::paper_default(&layout, 12);
        let mut srules = SRuleSpace::unlimited(&topo);
        let out = encode_batch(&topo, &cfg, &mut srules, &[], 8);
        assert!(out.encodings.is_empty());
        assert_eq!(out.reencoded, 0);
    }
}
