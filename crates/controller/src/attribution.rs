//! Stable rule-attribution ids for the copy-tree trace.
//!
//! A traced replay records *where* each copy went; this module answers
//! *why* — which compiled rule the controller put there. Every rule of a
//! group's encoding gets a stable textual id derived only from the group
//! id, the layer, and the rule's position in the compiled encoding
//! (`g3/d-leaf/p0`, `g3/d-spine/s@2`, `g3/d-leaf/default`), so ids are
//! reproducible across runs and survive unrelated groups churning.
//!
//! Lookup priority mirrors the data plane's ingress pipeline (own-id
//! p-rule, then s-rule, then default p-rule): a switch listed by both a
//! p-rule and the default set attributes to the p-rule, exactly as the
//! switch would match it.

use std::collections::BTreeMap;

use elmo_core::LayerEncoding;

use crate::controller::GroupState;

/// One group's rule-attribution table: downstream switch id → stable
/// rule id, per layer, plus the upstream labels.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuleAttribution {
    group: u64,
    /// Global leaf index → rule id.
    d_leaf: BTreeMap<u32, String>,
    /// Pod index → rule id (d-spine rules are keyed by pod).
    d_spine: BTreeMap<u32, String>,
}

fn layer_map(group: u64, layer: &str, enc: &LayerEncoding) -> BTreeMap<u32, String> {
    let mut map = BTreeMap::new();
    // Lowest priority first; later inserts overwrite, matching the
    // switch pipeline's p-rule > s-rule > default resolution.
    for &sw in &enc.default_switches {
        map.insert(sw, format!("g{group}/{layer}/default"));
    }
    for (sw, _) in &enc.s_rules {
        map.insert(*sw, format!("g{group}/{layer}/s@{sw}"));
    }
    for (i, rule) in enc.p_rules.iter().enumerate() {
        for &sw in &rule.switches {
            map.insert(sw, format!("g{group}/{layer}/p{i}"));
        }
    }
    map
}

impl RuleAttribution {
    /// Build the attribution table from a group's compiled state.
    pub fn from_state(state: &GroupState) -> RuleAttribution {
        RuleAttribution {
            group: state.id.0,
            d_leaf: layer_map(state.id.0, "d-leaf", &state.enc.d_leaf),
            d_spine: layer_map(state.id.0, "d-spine", &state.enc.d_spine),
        }
    }

    /// The group this table attributes for.
    pub fn group(&self) -> u64 {
        self.group
    }

    /// Id of the sender-side leaf p-rule (always header-carried).
    pub fn u_leaf(&self) -> String {
        format!("g{}/u-leaf", self.group)
    }

    /// Id of the sender-side spine p-rule.
    pub fn u_spine(&self) -> String {
        format!("g{}/u-spine", self.group)
    }

    /// Id of the core p-rule.
    pub fn core(&self) -> String {
        format!("g{}/core", self.group)
    }

    /// Rule id resolving downstream forwarding at leaf `leaf` (global
    /// leaf index), if the encoding covers it.
    pub fn d_leaf_rule(&self, leaf: u32) -> Option<&str> {
        self.d_leaf.get(&leaf).map(String::as_str)
    }

    /// Rule id resolving downstream forwarding at the spines of pod
    /// `pod`, if the encoding covers it.
    pub fn d_spine_rule(&self, pod: u32) -> Option<&str> {
        self.d_spine.get(&pod).map(String::as_str)
    }
}

impl GroupState {
    /// The stable rule-attribution table for this group's encoding.
    pub fn rule_attribution(&self) -> RuleAttribution {
        RuleAttribution::from_state(self)
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use elmo_topology::{Clos, HostId};

    use crate::{Controller, ControllerConfig, GroupId, MemberRole};

    fn cross_pod_state(r: usize) -> (Controller, GroupId) {
        let topo = Clos::paper_example();
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(r));
        let gid = GroupId(3);
        ctl.create_group(
            gid,
            elmo_net::vxlan::Vni(7),
            Ipv4Addr::new(225, 9, 9, 3),
            [0u32, 1, 42, 48, 57]
                .iter()
                .map(|&h| (HostId(h), MemberRole::Both)),
        );
        (ctl, gid)
    }

    #[test]
    fn attribution_covers_every_encoded_switch() {
        let (ctl, gid) = cross_pod_state(12);
        let state = ctl.group(gid).expect("group exists");
        let att = state.rule_attribution();
        assert_eq!(att.group(), 3);
        for (i, rule) in state.enc.d_leaf.p_rules.iter().enumerate() {
            for &sw in &rule.switches {
                assert_eq!(
                    att.d_leaf_rule(sw),
                    Some(format!("g3/d-leaf/p{i}").as_str())
                );
            }
        }
        for (sw, _) in &state.enc.d_leaf.s_rules {
            let rule = att.d_leaf_rule(*sw).expect("s-rule switch attributed");
            assert!(rule.starts_with("g3/d-leaf/"));
        }
        for &sw in &state.enc.d_spine.default_switches {
            assert!(att.d_spine_rule(sw).is_some());
        }
        assert_eq!(att.u_leaf(), "g3/u-leaf");
        assert_eq!(att.core(), "g3/core");
    }

    #[test]
    fn p_rules_win_over_defaults_in_attribution() {
        // A tight R forces s-rules/defaults alongside p-rules; whatever
        // the mix, an id listed by a p-rule must attribute to it.
        let (ctl, gid) = cross_pod_state(0);
        let state = ctl.group(gid).expect("group exists");
        let att = state.rule_attribution();
        for (i, rule) in state.enc.d_spine.p_rules.iter().enumerate() {
            for &sw in &rule.switches {
                assert_eq!(
                    att.d_spine_rule(sw),
                    Some(format!("g3/d-spine/p{i}").as_str())
                );
            }
        }
        // Unattributed switches resolve to None, never a bogus label.
        assert_eq!(att.d_leaf_rule(9999), None);
    }

    #[test]
    fn ids_are_stable_across_rebuilds() {
        let (ctl, gid) = cross_pod_state(12);
        let state = ctl.group(gid).expect("group exists");
        let a = state.rule_attribution();
        let b = state.rule_attribution();
        assert_eq!(a, b);
    }
}
