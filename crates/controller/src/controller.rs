//! The logically-centralized Elmo controller (paper §2).
//!
//! The controller owns all multicast group state: member hosts and roles,
//! the group's tree on the logical topology, its p-/s-rule encoding, and the
//! provider-assigned outer multicast address. On membership changes it
//! re-runs Algorithm 1 for the group, diffs the result against what is
//! installed, and reports exactly which hypervisors, leaves, and spines need
//! updates — the quantity Table 2 measures. Core switches never need
//! updates, by construction.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use elmo_core::{
    encode_group, header_for_sender, DetHashMap, ElmoHeader, EncodeCache, EncoderConfig,
    GroupEncoding, HeaderLayout, RedundancyMode,
};
use elmo_dataplane::MembershipSignal;
use elmo_net::vxlan::Vni;
use elmo_topology::{Clos, FailureState, GroupTree, HostId, LeafId, PodId, UpstreamCover};

use crate::srules::SRuleSpace;

/// Group-lifecycle counters. All mutation entry points are `&mut self`
/// (sequential), so these are deterministic across thread counts.
struct CtlMetrics {
    groups_created: elmo_obs::Counter,
    groups_deleted: elmo_obs::Counter,
    membership_changes: elmo_obs::Counter,
}

fn metrics() -> &'static CtlMetrics {
    static M: std::sync::OnceLock<CtlMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| CtlMetrics {
        groups_created: elmo_obs::counter("controller.groups_created"),
        groups_deleted: elmo_obs::counter("controller.groups_deleted"),
        membership_changes: elmo_obs::counter("controller.membership_changes"),
    })
}

/// A fabric-wide multicast group identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u64);

/// One group-creation request for [`Controller::create_groups_batch`]: the
/// same arguments [`Controller::create_group`] takes, as a tuple.
pub type GroupSpec = (GroupId, Vni, Ipv4Addr, Vec<(HostId, MemberRole)>);

/// What a member VM does in the group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemberRole {
    Sender,
    Receiver,
    Both,
}

impl MemberRole {
    /// Whether this role sends.
    pub fn sends(self) -> bool {
        matches!(self, MemberRole::Sender | MemberRole::Both)
    }

    /// Whether this role receives.
    pub fn receives(self) -> bool {
        matches!(self, MemberRole::Receiver | MemberRole::Both)
    }
}

/// Per-host member counts (several VMs of a group may share a host).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MemberCounts {
    pub senders: u32,
    pub receivers: u32,
}

/// Controller-side state of one group.
#[derive(Clone, Debug)]
pub struct GroupState {
    pub id: GroupId,
    pub vni: Vni,
    /// Tenant-chosen group address (isolated per VNI).
    pub tenant_addr: Ipv4Addr,
    /// Provider-assigned outer address, unique fabric-wide.
    pub outer_addr: Ipv4Addr,
    /// Member VM counts per host.
    pub members: BTreeMap<HostId, MemberCounts>,
    /// Receiver tree on the logical topology.
    pub tree: GroupTree,
    /// Current p-/s-rule encoding.
    pub enc: GroupEncoding,
    /// Explicit upstream cover per sender pod (empty = multipath).
    pub covers: BTreeMap<PodId, UpstreamCover>,
    /// Groups degraded to unicast during failure reconfiguration.
    pub unicast_fallback: bool,
    /// Monotonic encoding version, bumped on every membership change that
    /// touches the tree or encoding. Deployment agents stamp installed
    /// headers with it; because headers are source-routed (self-contained
    /// p-rules) and the delta path never frees live s-rules, packets
    /// encoded against epoch `n` remain deliverable while epoch `n+1`
    /// rolls out — the epoch only tells agents *which* hypervisors still
    /// carry stale flows.
    pub epoch: u64,
    /// Certificate that `enc.d_leaf` is the canonical parsimonious
    /// fast-path encoding of the current tree (see
    /// [`elmo_core::layer_is_parsimonious`]). Established once after each
    /// full encode (only when the delta path is enabled) and preserved by
    /// every accepted patch, it lets the churn engine patch without
    /// re-probing member inputs on each event. `false` means "not
    /// certified", not "not parsimonious" — the delta path then escalates
    /// to a full re-encode, which re-certifies.
    pub leaf_parsimonious: bool,
}

impl GroupState {
    /// Hosts with at least one sender VM.
    pub fn sender_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.members
            .iter()
            .filter(|(_, c)| c.senders > 0)
            .map(|(&h, _)| h)
    }

    /// Hosts with at least one receiver VM.
    pub fn receiver_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.members
            .iter()
            .filter(|(_, c)| c.receivers > 0)
            .map(|(&h, _)| h)
    }

    /// The upstream cover a sender in `pod` should use.
    pub fn cover_for(&self, pod: PodId) -> UpstreamCover {
        self.covers
            .get(&pod)
            .cloned()
            .unwrap_or_else(UpstreamCover::multipath)
    }
}

/// Which devices one control-plane event touched.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct UpdateSet {
    /// Hypervisor switches receiving flow/subscription updates.
    pub hypervisors: BTreeSet<HostId>,
    /// Leaf switches receiving group-table updates.
    pub leaves: BTreeSet<LeafId>,
    /// Pods whose spines receive group-table updates (each pod counts
    /// `spines_per_pod` physical switch updates).
    pub spine_pods: BTreeSet<PodId>,
    /// Every sender hypervisor of the group must be reprogrammed: its
    /// header embeds the changed shared downstream sections. Kept symbolic
    /// so the membership hot path never materializes a per-host set whose
    /// size it cannot control; accounting consumers expand it with
    /// [`Self::materialize_senders`] against the group's current state.
    pub all_senders: bool,
    /// The group's encoding epoch *after* this event (`0` when the event
    /// touched no tracked group). Deployment agents stamp reprogrammed
    /// flows with it, and the temporal verifier uses it to attribute any
    /// delivery divergence of in-flight packets: a diverging pre-update
    /// header is acceptable only when this epoch advanced past the one
    /// the header was encoded under (the packet is "versioned out").
    pub epoch: u64,
}

impl UpdateSet {
    /// Total physical switch updates at the spine tier.
    pub fn spine_switch_updates(&self, topo: &Clos) -> usize {
        self.spine_pods.len() * topo.params().spines_per_pod
    }

    /// Expand a symbolic `all_senders` marker into explicit hypervisor
    /// entries against the group's current state. Idempotent; a no-op when
    /// the marker is unset. Accounting consumers (Table 2) call this; the
    /// churn hot path deliberately never does.
    pub fn materialize_senders(&mut self, state: &GroupState) {
        if std::mem::take(&mut self.all_senders) {
            for h in state.sender_hosts() {
                self.hypervisors.insert(h);
            }
        }
    }
}

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Total header budget in bytes (paper: 325).
    pub header_budget_bytes: usize,
    /// Redundancy limit `R`.
    pub r: usize,
    /// Per-leaf group-table capacity `Fmax`.
    pub leaf_fmax: usize,
    /// Per-spine group-table capacity `Fmax`.
    pub spine_fmax: usize,
    /// Redundancy interpretation.
    pub mode: RedundancyMode,
}

impl ControllerConfig {
    /// The paper's main evaluation setting: 325-byte headers, unlimited
    /// group tables (to observe natural s-rule demand).
    pub fn paper_default(r: usize) -> Self {
        ControllerConfig {
            header_budget_bytes: 325,
            r,
            leaf_fmax: usize::MAX,
            spine_fmax: usize::MAX,
            mode: RedundancyMode::Sum,
        }
    }
}

/// The logically-centralized controller.
#[derive(Clone, Debug)]
pub struct Controller {
    topo: Clos,
    layout: HeaderLayout,
    encoder: EncoderConfig,
    srules: SRuleSpace,
    /// Structural encoding cache for the batch pipeline's optimistic
    /// phase, warm across batches (see `elmo_core::sig`).
    cache: EncodeCache,
    groups: DetHashMap<GroupId, GroupState>,
    /// Tenant-facing index: (VNI, tenant group address) -> group.
    by_addr: DetHashMap<(Vni, Ipv4Addr), GroupId>,
    next_group_id: u64,
    failures: FailureState,
    /// Whether membership changes may take the delta re-encode path (see
    /// [`crate::delta`]). On by default; the full path is kept reachable
    /// for baselines and as the escalation target.
    delta_enabled: bool,
    /// Deterministic churn counters (mirrored to global obs counters).
    churn: crate::delta::ChurnStats,
    delta_scratch: crate::delta::DeltaScratch,
}

impl Controller {
    /// Build a controller for a fabric.
    pub fn new(topo: Clos, config: ControllerConfig) -> Self {
        let layout = HeaderLayout::for_clos(&topo);
        let mut encoder = EncoderConfig::with_budget(&layout, config.header_budget_bytes, config.r);
        encoder.mode = config.mode;
        Controller {
            topo,
            layout,
            encoder,
            srules: SRuleSpace::new(&topo, config.leaf_fmax, config.spine_fmax),
            cache: EncodeCache::new(),
            groups: DetHashMap::default(),
            by_addr: DetHashMap::default(),
            next_group_id: 0,
            failures: FailureState::none(),
            delta_enabled: true,
            churn: crate::delta::ChurnStats::default(),
            delta_scratch: crate::delta::DeltaScratch::default(),
        }
    }

    /// Enable or disable the delta re-encode path for membership changes.
    /// Disabling it sends every receiver-tree change through the full
    /// re-encoder — the churn bench's baseline mode. Final state is
    /// bit-identical either way; only the work done per event differs.
    pub fn set_delta_enabled(&mut self, on: bool) {
        self.delta_enabled = on;
    }

    /// Whether the delta re-encode path is active.
    pub fn delta_enabled(&self) -> bool {
        self.delta_enabled
    }

    /// Churn-engine counters accumulated by this controller.
    pub fn churn_stats(&self) -> crate::delta::ChurnStats {
        self.churn
    }

    /// The fabric this controller manages.
    pub fn topo(&self) -> &Clos {
        &self.topo
    }

    /// The header layout in force.
    pub fn layout(&self) -> &HeaderLayout {
        &self.layout
    }

    /// The encoder configuration in force.
    pub fn encoder_config(&self) -> &EncoderConfig {
        &self.encoder
    }

    /// The s-rule occupancy tracker.
    pub fn srules(&self) -> &SRuleSpace {
        &self.srules
    }

    /// Current failure state.
    pub fn failures(&self) -> &FailureState {
        &self.failures
    }

    /// Look up a group.
    pub fn group(&self, id: GroupId) -> Option<&GroupState> {
        self.groups.get(&id)
    }

    /// Mutable group access (failure handling updates covers in place).
    pub(crate) fn group_mut(&mut self, id: GroupId) -> Option<&mut GroupState> {
        self.groups.get_mut(&id)
    }

    /// Mutable failure state (updated as failures are reported).
    pub(crate) fn failures_mut(&mut self) -> &mut FailureState {
        &mut self.failures
    }

    /// Number of managed groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Iterate over all groups.
    pub fn groups(&self) -> impl Iterator<Item = &GroupState> {
        self.groups.values()
    }

    /// The provider-assigned outer multicast address for a group id.
    pub fn outer_addr(id: GroupId) -> Ipv4Addr {
        let b = (id.0 & 0x00ff_ffff) as u32;
        let o = b.to_be_bytes();
        Ipv4Addr::new(230, o[1], o[2], o[3])
    }

    // ----- group lifecycle ---------------------------------------------------

    /// Create a group with an initial member set. Returns the devices that
    /// must be updated (every sender hypervisor, every receiver hypervisor,
    /// and any switches taking s-rules).
    pub fn create_group(
        &mut self,
        id: GroupId,
        vni: Vni,
        tenant_addr: Ipv4Addr,
        members: impl IntoIterator<Item = (HostId, MemberRole)>,
    ) -> UpdateSet {
        let _span = elmo_obs::span!("create_group");
        let mut counts: BTreeMap<HostId, MemberCounts> = BTreeMap::new();
        for (h, role) in members {
            let c = counts.entry(h).or_default();
            if role.sends() {
                c.senders += 1;
            }
            if role.receives() {
                c.receivers += 1;
            }
        }
        let tree = Self::receiver_tree(&self.topo, &counts);
        let enc = self.encode(&tree);
        let leaf_parsimonious = self.delta_enabled
            && crate::delta::certify_leaf_parsimony(
                &self.topo,
                &self.layout,
                &self.encoder,
                &tree,
                &enc,
                &mut self.delta_scratch,
            );
        let state = GroupState {
            id,
            vni,
            tenant_addr,
            outer_addr: Self::outer_addr(id),
            members: counts,
            tree,
            enc,
            covers: BTreeMap::new(),
            unicast_fallback: false,
            epoch: 0,
            leaf_parsimonious,
        };
        let mut updates = UpdateSet::default();
        for h in state.sender_hosts().chain(state.receiver_hosts()) {
            updates.hypervisors.insert(h);
        }
        for (l, _) in &state.enc.d_leaf.s_rules {
            updates.leaves.insert(LeafId(*l));
        }
        for (p, _) in &state.enc.d_spine.s_rules {
            updates.spine_pods.insert(PodId(*p));
        }
        self.by_addr.insert((vni, tenant_addr), id);
        self.next_group_id = self.next_group_id.max(id.0 + 1);
        let prev = self.groups.insert(id, state);
        debug_assert!(prev.is_none(), "group id reused");
        metrics().groups_created.inc();
        updates
    }

    /// Create many groups at once through the two-phase parallel encode
    /// pipeline (see [`crate::batch`]): groups are encoded concurrently on
    /// `threads` workers, then admitted into the s-rule space sequentially
    /// in slice order. The resulting controller state — encodings, s-rule
    /// occupancy, address index — is identical to calling
    /// [`Self::create_group`] once per spec in the same order; only
    /// wall-clock time differs. Per-group [`UpdateSet`]s are not collected
    /// (bulk installation reprograms every touched device anyway).
    pub fn create_groups_batch(&mut self, specs: &[GroupSpec], threads: usize) {
        let bm = crate::batch::metrics();
        bm.groups.add(specs.len() as u64);
        // Phase 1 (parallel): member counts, receiver tree, optimistic encode
        // through the (frozen) structural cache.
        let topo = &self.topo;
        let layout = &self.layout;
        let encoder = &self.encoder;
        let base = &self.cache;
        let delta_enabled = self.delta_enabled;
        let prepared = {
            let _span = elmo_obs::span!("batch_optimistic");
            elmo_core::parallel_map_with(
                specs.len(),
                threads,
                || {
                    (
                        elmo_core::EncodeScratch::new(),
                        Vec::new(),
                        elmo_core::CacheShard::new(),
                        Vec::new(),
                        crate::delta::DeltaScratch::default(),
                    )
                },
                |(scratch, reqs, shard, outcomes, delta_scratch), i| {
                    let mut counts: BTreeMap<HostId, MemberCounts> = BTreeMap::new();
                    for &(h, role) in &specs[i].3 {
                        let c = counts.entry(h).or_default();
                        if role.sends() {
                            c.senders += 1;
                        }
                        if role.receives() {
                            c.receivers += 1;
                        }
                    }
                    let tree = Self::receiver_tree(topo, &counts);
                    let enc = crate::batch::encode_group_optimistic_cached(
                        topo, &tree, encoder, scratch, base, shard, outcomes, reqs,
                    );
                    crate::batch::metrics().optimistic_encodes.inc();
                    let leaf_parsimonious = delta_enabled
                        && crate::delta::certify_leaf_parsimony(
                            topo,
                            layout,
                            encoder,
                            &tree,
                            &enc,
                            delta_scratch,
                        );
                    (
                        counts,
                        tree,
                        enc,
                        std::mem::take(reqs),
                        std::mem::take(outcomes),
                        leaf_parsimonious,
                    )
                },
            )
        };
        // Phase 2 (sequential, slice order): cache merge + admission + state
        // install.
        let _span = elmo_obs::span!("batch_admission");
        let mut scratch = elmo_core::EncodeScratch::new();
        for (spec, prep) in specs.iter().zip(prepared) {
            let (counts, tree, mut enc, reqs, outcomes, mut leaf_parsimonious) = prep;
            let (id, vni, tenant_addr, _) = spec;
            let (hits, misses) = self.cache.absorb(outcomes);
            bm.cache_hit.add(hits);
            bm.cache_miss.add(misses);
            if crate::batch::try_admit(&mut self.srules, &reqs) {
                bm.admitted.inc();
            } else {
                bm.reencoded.inc();
                enc = crate::batch::encode_group_admitted(
                    &self.topo,
                    &tree,
                    &self.encoder,
                    &mut self.srules,
                    &mut scratch,
                );
                // The serial re-encode may land on a different layer shape;
                // its certificate must be re-established.
                leaf_parsimonious = self.delta_enabled
                    && crate::delta::certify_leaf_parsimony(
                        &self.topo,
                        &self.layout,
                        &self.encoder,
                        &tree,
                        &enc,
                        &mut self.delta_scratch,
                    );
            }
            let state = GroupState {
                id: *id,
                vni: *vni,
                tenant_addr: *tenant_addr,
                outer_addr: Self::outer_addr(*id),
                members: counts,
                tree,
                enc,
                covers: BTreeMap::new(),
                unicast_fallback: false,
                epoch: 0,
                leaf_parsimonious,
            };
            self.by_addr.insert((*vni, *tenant_addr), *id);
            self.next_group_id = self.next_group_id.max(id.0 + 1);
            let prev = self.groups.insert(*id, state);
            debug_assert!(prev.is_none(), "group id reused");
            metrics().groups_created.inc();
        }
    }

    /// Remove a group entirely, freeing its s-rule reservations.
    pub fn delete_group(&mut self, id: GroupId) -> Option<UpdateSet> {
        let state = self.groups.remove(&id)?;
        metrics().groups_deleted.inc();
        self.by_addr.remove(&(state.vni, state.tenant_addr));
        Self::free_srules(&mut self.srules, &state.enc);
        let mut updates = UpdateSet::default();
        for h in state.sender_hosts().chain(state.receiver_hosts()) {
            updates.hypervisors.insert(h);
        }
        for (l, _) in &state.enc.d_leaf.s_rules {
            updates.leaves.insert(LeafId(*l));
        }
        for (p, _) in &state.enc.d_spine.s_rules {
            updates.spine_pods.insert(PodId(*p));
        }
        Some(updates)
    }

    /// A member VM joins. Returns the update fan-out.
    pub fn join(&mut self, id: GroupId, host: HostId, role: MemberRole) -> UpdateSet {
        self.membership_change(id, host, role, true)
    }

    /// A member VM leaves. Returns the update fan-out.
    pub fn leave(&mut self, id: GroupId, host: HostId, role: MemberRole) -> UpdateSet {
        self.membership_change(id, host, role, false)
    }

    /// A member VM migrates between hosts (paper §1: VM migration is a
    /// major churn source in shared clouds). Semantically a leave at `from`
    /// plus a join at `to`, but reported as one reconfiguration: the update
    /// sets are merged so a device touched by both counts once.
    pub fn migrate(
        &mut self,
        id: GroupId,
        from: HostId,
        to: HostId,
        role: MemberRole,
    ) -> UpdateSet {
        if from == to {
            return UpdateSet::default();
        }
        let mut updates = self.membership_change(id, from, role, false);
        let second = self.membership_change(id, to, role, true);
        updates.hypervisors.extend(second.hypervisors);
        updates.leaves.extend(second.leaves);
        updates.spine_pods.extend(second.spine_pods);
        updates.all_senders |= second.all_senders;
        updates.epoch = updates.epoch.max(second.epoch);
        updates
    }

    fn membership_change(
        &mut self,
        id: GroupId,
        host: HostId,
        role: MemberRole,
        joining: bool,
    ) -> UpdateSet {
        let Controller {
            topo,
            layout,
            encoder,
            srules,
            groups,
            delta_enabled,
            churn,
            delta_scratch,
            ..
        } = self;
        let mut updates = UpdateSet::default();
        let Some(state) = groups.get_mut(&id) else {
            return updates;
        };
        metrics().membership_changes.inc();
        // Adjust per-host counts.
        let before_receiving = state.members.get(&host).is_some_and(|c| c.receivers > 0);
        {
            let c = state.members.entry(host).or_default();
            if role.sends() {
                c.senders = if joining {
                    c.senders + 1
                } else {
                    c.senders.saturating_sub(1)
                };
            }
            if role.receives() {
                c.receivers = if joining {
                    c.receivers + 1
                } else {
                    c.receivers.saturating_sub(1)
                };
            }
            if c.senders == 0 && c.receivers == 0 {
                state.members.remove(&host);
            }
        }
        // The changed VM's own hypervisor always updates (flow install or
        // subscription change).
        updates.hypervisors.insert(host);
        updates.epoch = state.epoch;

        if !role.receives() {
            // Paper §5.1.3a: "If a member is a sender, the controller only
            // updates the source hypervisor switch."
            return updates;
        }
        let after_receiving = state.members.get(&host).is_some_and(|c| c.receivers > 0);
        if before_receiving == after_receiving {
            // The host's presence in the tree is unchanged (another VM on the
            // same host still receives): no rule changes anywhere.
            return updates;
        }

        // The receiver tree changed. Try the delta path first: if the
        // placement structure is preserved, patch the leaf layer in place
        // and skip re-encoding entirely.
        state.epoch += 1;
        updates.epoch = state.epoch;
        if *delta_enabled {
            match crate::delta::try_apply(
                topo,
                layout,
                encoder,
                state,
                host,
                after_receiving,
                delta_scratch,
            ) {
                crate::delta::DeltaOutcome::Patched => {
                    churn.delta_hits += 1;
                    crate::delta::metrics().delta_hit.inc();
                    // A patch edits the shared downstream leaf section (or,
                    // for single-leaf groups, the per-sender synthesized
                    // rules), so every sender re-encapsulates; s-rules are
                    // untouched by construction, so no switch updates.
                    updates.all_senders = true;
                    return updates;
                }
                crate::delta::DeltaOutcome::Structural => {
                    churn.structural_escalations += 1;
                    crate::delta::metrics().structural_escalation.inc();
                }
                crate::delta::DeltaOutcome::Refused(_) => {}
            }
        }
        churn.full_reencodes += 1;
        crate::delta::metrics().full_reencode.inc();

        // Full path: rebuild the tree, re-encode, and diff.
        let old_tree =
            std::mem::replace(&mut state.tree, Self::receiver_tree(topo, &state.members));
        Self::free_srules(srules, &state.enc);
        let new_enc = encode_group_full(topo, &state.tree, encoder, srules);
        let old_enc = std::mem::replace(&mut state.enc, new_enc);
        state.leaf_parsimonious = *delta_enabled
            && crate::delta::certify_leaf_parsimony(
                topo,
                layout,
                encoder,
                &state.tree,
                &state.enc,
                delta_scratch,
            );
        Self::diff_srules_into(&old_enc, &state.enc, &mut updates);
        if Self::headers_changed_for_all(&old_tree, &state.tree, &old_enc, &state.enc) {
            updates.all_senders = true;
        } else {
            for h in state
                .members
                .iter()
                .filter(|(_, c)| c.senders > 0)
                .map(|(&h, _)| h)
            {
                if Self::sender_upstream_changed(topo, &old_tree, &state.tree, h) {
                    updates.hypervisors.insert(h);
                }
            }
        }
        updates
    }

    /// Rebuild the receiver tree from per-host counts.
    fn receiver_tree(topo: &Clos, members: &BTreeMap<HostId, MemberCounts>) -> GroupTree {
        GroupTree::new(
            topo,
            members
                .iter()
                .filter(|(_, c)| c.receivers > 0)
                .map(|(&h, _)| h),
        )
    }

    fn encode(&mut self, tree: &GroupTree) -> GroupEncoding {
        encode_group_full(&self.topo, tree, &self.encoder, &mut self.srules)
    }

    fn free_srules(srules: &mut SRuleSpace, enc: &GroupEncoding) {
        for (l, _) in &enc.d_leaf.s_rules {
            srules.free_leaf(LeafId(*l));
        }
        for (p, _) in &enc.d_spine.s_rules {
            srules.free_pod(PodId(*p));
        }
    }

    /// Record switch-side s-rule differences between two encodings via a
    /// two-pointer merge walk. Both layers' s-rule lists come out of the
    /// encoder in ascending switch-id order (`cluster_pressed` assigns from
    /// a sorted unassigned set), so one linear pass with no allocation
    /// finds every switch whose installed rule appears, vanishes, or
    /// changes contents.
    fn diff_srules_into(old: &GroupEncoding, new: &GroupEncoding, updates: &mut UpdateSet) {
        fn walk(
            old: &[(u32, elmo_core::PortBitmap)],
            new: &[(u32, elmo_core::PortBitmap)],
            mut touch: impl FnMut(u32),
        ) {
            debug_assert!(old.windows(2).all(|w| w[0].0 < w[1].0), "s-rules sorted");
            debug_assert!(new.windows(2).all(|w| w[0].0 < w[1].0), "s-rules sorted");
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < new.len() {
                match (old.get(i), new.get(j)) {
                    (Some((os, ob)), Some((ns, nb))) if os == ns => {
                        if ob != nb {
                            touch(*os);
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some((os, _)), Some((ns, _))) if os < ns => {
                        touch(*os);
                        i += 1;
                    }
                    (Some(_), Some((ns, _))) => {
                        touch(*ns);
                        j += 1;
                    }
                    (Some((os, _)), None) => {
                        touch(*os);
                        i += 1;
                    }
                    (None, Some((ns, _))) => {
                        touch(*ns);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        walk(&old.d_leaf.s_rules, &new.d_leaf.s_rules, |s| {
            updates.leaves.insert(LeafId(s));
        });
        walk(&old.d_spine.s_rules, &new.d_spine.s_rules, |s| {
            updates.spine_pods.insert(PodId(s));
        });
    }

    /// Whether every sender's packet header changed between two encodings:
    /// the shared downstream sections differ, the pod set (core bitmap)
    /// differs, or a synthesized downstream layer's source sets differ. An
    /// all-empty downstream layer is synthesized per sender straight from
    /// the tree (out-of-span receivers), so equal stored sections do not
    /// imply equal headers: if either layer is synthesized in either
    /// encoding, any change to the sets it is synthesized from changes
    /// every sender's header.
    fn headers_changed_for_all(
        old_tree: &GroupTree,
        new_tree: &GroupTree,
        old: &GroupEncoding,
        new: &GroupEncoding,
    ) -> bool {
        if old.d_leaf.p_rules != new.d_leaf.p_rules
            || old.d_leaf.default_rule != new.d_leaf.default_rule
            || old.d_spine.p_rules != new.d_spine.p_rules
            || old.d_spine.default_rule != new.d_spine.default_rule
        {
            return true;
        }
        if !old_tree.pods().eq(new_tree.pods()) {
            return true;
        }
        let leaf_synth = |e: &GroupEncoding| {
            e.d_leaf.p_rules.is_empty()
                && e.d_leaf.s_rules.is_empty()
                && e.d_leaf.default_rule.is_none()
        };
        let spine_synth = |e: &GroupEncoding| {
            e.d_spine.p_rules.is_empty()
                && e.d_spine.s_rules.is_empty()
                && e.d_spine.default_rule.is_none()
        };
        let (lo, ln) = (leaf_synth(old), leaf_synth(new));
        let (so, sn) = (spine_synth(old), spine_synth(new));
        if lo != ln || so != sn {
            return true;
        }
        if lo && !old_tree.leaf_hosts().eq(new_tree.leaf_hosts()) {
            return true;
        }
        if so && !old_tree.pod_leaves().eq(new_tree.pod_leaves()) {
            return true;
        }
        false
    }

    /// Whether a sender's header changed through its *upstream* parts only
    /// (valid after [`Self::headers_changed_for_all`] returned false): the
    /// sender's leaf's host set or its pod's leaf set.
    fn sender_upstream_changed(
        topo: &Clos,
        old_tree: &GroupTree,
        new_tree: &GroupTree,
        sender: HostId,
    ) -> bool {
        let leaf = topo.leaf_of_host(sender);
        let pod = topo.pod_of_leaf(leaf);
        old_tree.hosts_on_leaf(leaf) != new_tree.hosts_on_leaf(leaf)
            || old_tree.leaves_in_pod(pod) != new_tree.leaves_in_pod(pod)
    }

    /// Look a group up by its tenant-facing identity.
    pub fn group_id_for(&self, vni: Vni, tenant_addr: Ipv4Addr) -> Option<GroupId> {
        self.by_addr.get(&(vni, tenant_addr)).copied()
    }

    /// Process a membership signal intercepted from a tenant VM's IGMP
    /// message (paper §2: the controller "receives join and leave requests
    /// for multicast groups via an API" — the hypervisor switch is the edge
    /// that turns standard IGMP into those API calls). A join to an unknown
    /// (VNI, address) pair creates the group on the fly, exactly like cloud
    /// tenants expect from IP multicast; a leave for an unknown group is a
    /// no-op. Returns the group id and the devices to update.
    pub fn handle_membership_signal(
        &mut self,
        vni: Vni,
        signal: &MembershipSignal,
        role: MemberRole,
    ) -> (Option<GroupId>, UpdateSet) {
        match (self.group_id_for(vni, signal.group), signal.join) {
            (Some(id), true) => {
                let updates = self.join(id, signal.host, role);
                (Some(id), updates)
            }
            (Some(id), false) => {
                let updates = self.leave(id, signal.host, role);
                // Tear the group down when the last member leaves.
                if self.groups.get(&id).is_some_and(|g| g.members.is_empty()) {
                    self.delete_group(id);
                }
                (Some(id), updates)
            }
            (None, true) => {
                let id = GroupId(self.next_group_id);
                let updates = self.create_group(id, vni, signal.group, [(signal.host, role)]);
                (Some(id), updates)
            }
            (None, false) => (None, UpdateSet::default()),
        }
    }

    // ----- packet headers -----------------------------------------------------

    /// The Elmo header a given sender's hypervisor should push for a group.
    pub fn header_for(&self, id: GroupId, sender: HostId) -> Option<ElmoHeader> {
        let state = self.groups.get(&id)?;
        let pod = self.topo.pod_of_host(sender);
        let cover = state.cover_for(pod);
        Some(header_for_sender(
            &self.topo,
            &self.layout,
            &state.tree,
            &state.enc,
            sender,
            &cover,
        ))
    }
}

/// Run Algorithm 1 for both downstream layers against the shared capacity
/// tracker. Free-standing so the borrow of `srules` is clean.
pub(crate) fn encode_group_full(
    topo: &Clos,
    tree: &GroupTree,
    encoder: &EncoderConfig,
    srules: &mut SRuleSpace,
) -> GroupEncoding {
    // Algorithm 1 runs per layer; both layers draw from the same tracker.
    let cell = std::cell::RefCell::new(srules);
    let mut spine_alloc = |p: PodId| cell.borrow_mut().alloc_pod(p);
    let mut leaf_alloc = |l: LeafId| cell.borrow_mut().alloc_leaf(l);
    encode_group(topo, tree, encoder, &mut spine_alloc, &mut leaf_alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TADDR: Ipv4Addr = Ipv4Addr::new(225, 1, 2, 3);

    fn new_controller() -> Controller {
        Controller::new(Clos::paper_example(), ControllerConfig::paper_default(0))
    }

    /// The Figure 3a group with Ha a sender and the rest receivers.
    fn figure3_members() -> Vec<(HostId, MemberRole)> {
        vec![
            (HostId(0), MemberRole::Both),
            (HostId(1), MemberRole::Receiver),
            (HostId(42), MemberRole::Receiver),
            (HostId(48), MemberRole::Receiver),
            (HostId(49), MemberRole::Receiver),
            (HostId(57), MemberRole::Receiver),
        ]
    }

    #[test]
    fn create_group_reports_full_fanout() {
        let mut ctl = new_controller();
        let updates = ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        assert_eq!(updates.hypervisors.len(), 6);
        let g = ctl.group(GroupId(1)).unwrap();
        assert_eq!(g.tree.size(), 6);
        assert_eq!(g.outer_addr, Controller::outer_addr(GroupId(1)));
        assert_eq!(ctl.group_count(), 1);
    }

    #[test]
    fn outer_addresses_are_unique_multicast() {
        let a = Controller::outer_addr(GroupId(1));
        let b = Controller::outer_addr(GroupId(2));
        assert_ne!(a, b);
        assert!(elmo_net::ipv4::is_multicast(a));
    }

    #[test]
    fn sender_only_join_touches_one_hypervisor() {
        let mut ctl = new_controller();
        ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        let updates = ctl.join(GroupId(1), HostId(30), MemberRole::Sender);
        assert_eq!(updates.hypervisors.len(), 1);
        assert!(updates.hypervisors.contains(&HostId(30)));
        assert!(updates.leaves.is_empty());
        assert!(updates.spine_pods.is_empty());
        // The new sender's header is available immediately.
        assert!(ctl.header_for(GroupId(1), HostId(30)).is_some());
    }

    #[test]
    fn receiver_join_on_new_leaf_updates_senders() {
        let mut ctl = new_controller();
        ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        let before = ctl.header_for(GroupId(1), HostId(0)).unwrap();
        // Host 16 is on L2 (pod 1): a brand-new leaf and pod.
        let mut updates = ctl.join(GroupId(1), HostId(16), MemberRole::Receiver);
        // Downstream rules changed, so the sender hypervisor (host 0) must
        // update alongside the joining host.
        assert!(updates.hypervisors.contains(&HostId(16)));
        updates.materialize_senders(ctl.group(GroupId(1)).unwrap());
        assert!(updates.hypervisors.contains(&HostId(0)));
        let after = ctl.header_for(GroupId(1), HostId(0)).unwrap();
        assert_ne!(before, after);
        assert!(ctl.group(GroupId(1)).unwrap().tree.has_leaf(LeafId(2)));
    }

    #[test]
    fn second_vm_on_same_host_changes_nothing() {
        let mut ctl = new_controller();
        ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        // Host 1 already receives; a second receiver VM there is a no-op for
        // the network.
        let updates = ctl.join(GroupId(1), HostId(1), MemberRole::Receiver);
        assert_eq!(
            updates.hypervisors.len(),
            1,
            "only the host's own hypervisor"
        );
        assert!(updates.leaves.is_empty());
        // And leaving one of the two VMs is also a no-op.
        let updates = ctl.leave(GroupId(1), HostId(1), MemberRole::Receiver);
        assert_eq!(updates.hypervisors.len(), 1);
        assert!(updates.leaves.is_empty());
        // Leaving the last receiver VM shrinks the tree.
        let updates = ctl.leave(GroupId(1), HostId(1), MemberRole::Receiver);
        assert!(updates.hypervisors.contains(&HostId(1)));
        assert!(!ctl.group(GroupId(1)).unwrap().tree.contains(HostId(1)));
        let _ = updates;
    }

    #[test]
    fn join_then_leave_restores_the_tree() {
        let mut ctl = new_controller();
        ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        let before = ctl.group(GroupId(1)).unwrap().tree.clone();
        ctl.join(GroupId(1), HostId(20), MemberRole::Receiver);
        ctl.leave(GroupId(1), HostId(20), MemberRole::Receiver);
        assert_eq!(ctl.group(GroupId(1)).unwrap().tree, before);
    }

    #[test]
    fn srule_accounting_is_conserved() {
        let topo = Clos::paper_example();
        // Force s-rule usage: tiny header budget pushes switches to s-rules.
        let config = ControllerConfig {
            header_budget_bytes: 12,
            r: 0,
            leaf_fmax: 100,
            spine_fmax: 100,
            mode: RedundancyMode::Sum,
        };
        let mut ctl = Controller::new(topo, config);
        ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        let used: usize = ctl.srules().leaf_usages().iter().sum::<usize>()
            + ctl.srules().pod_usages().iter().sum::<usize>();
        assert!(used > 0, "constrained header must spill to s-rules");
        // Churn the group; accounting must track the encoding exactly.
        ctl.join(GroupId(1), HostId(20), MemberRole::Receiver);
        ctl.leave(GroupId(1), HostId(20), MemberRole::Receiver);
        let g = ctl.group(GroupId(1)).unwrap();
        let expected = g.enc.d_leaf.s_rules.len() + g.enc.d_spine.s_rules.len();
        let used: usize = ctl.srules().leaf_usages().iter().sum::<usize>()
            + ctl.srules().pod_usages().iter().sum::<usize>();
        assert_eq!(used, expected);
        // Deleting the group frees everything.
        ctl.delete_group(GroupId(1)).unwrap();
        let used: usize = ctl.srules().leaf_usages().iter().sum::<usize>()
            + ctl.srules().pod_usages().iter().sum::<usize>();
        assert_eq!(used, 0);
        assert_eq!(ctl.group_count(), 0);
    }

    #[test]
    fn srule_churn_reports_switch_updates() {
        let topo = Clos::paper_example();
        let config = ControllerConfig {
            header_budget_bytes: 12, // tiny: most leaves use s-rules
            r: 0,
            leaf_fmax: 100,
            spine_fmax: 100,
            mode: RedundancyMode::Sum,
        };
        let mut ctl = Controller::new(topo, config);
        ctl.create_group(GroupId(1), Vni(5), TADDR, figure3_members());
        // A receiver joining L2 forces new rules; some switch updates must
        // be reported.
        let updates = ctl.join(GroupId(1), HostId(16), MemberRole::Receiver);
        assert!(
            !updates.leaves.is_empty() || !updates.spine_pods.is_empty(),
            "constrained encoding must touch switch group tables"
        );
        // Physical spine update count scales with spines per pod.
        assert_eq!(
            updates.spine_switch_updates(ctl.topo()),
            updates.spine_pods.len() * 2
        );
    }

    #[test]
    fn batch_create_matches_sequential_create() {
        use elmo_core::SplitMix64;
        let topo = Clos::paper_example();
        // Constrained config so s-rules (and hence admission order) matter.
        let config = ControllerConfig {
            header_budget_bytes: 16,
            r: 0,
            leaf_fmax: 4,
            spine_fmax: 4,
            mode: RedundancyMode::Sum,
        };
        let mut rng = SplitMix64::new(0xBA7C);
        let specs: Vec<_> = (0..40u64)
            .map(|i| {
                let size = rng.range_inclusive(2, 16);
                let members: Vec<(HostId, MemberRole)> = (0..size)
                    .map(|j| {
                        let h = HostId(rng.below(topo.num_hosts() as u64) as u32);
                        let role = if j == 0 {
                            MemberRole::Both
                        } else {
                            MemberRole::Receiver
                        };
                        (h, role)
                    })
                    .collect();
                let addr = Ipv4Addr::new(225, 0, (i >> 8) as u8, i as u8);
                (GroupId(i), Vni(1), addr, members)
            })
            .collect();

        let mut serial = Controller::new(topo, config);
        for (id, vni, addr, members) in &specs {
            serial.create_group(*id, *vni, *addr, members.iter().copied());
        }
        for threads in [1, 2, 8] {
            let mut batch = Controller::new(topo, config);
            batch.create_groups_batch(&specs, threads);
            assert_eq!(batch.group_count(), serial.group_count());
            assert_eq!(
                batch.srules().leaf_usages(),
                serial.srules().leaf_usages(),
                "threads={threads}"
            );
            assert_eq!(batch.srules().pod_usages(), serial.srules().pod_usages());
            for (id, ..) in &specs {
                let b = batch.group(*id).unwrap();
                let s = serial.group(*id).unwrap();
                assert_eq!(b.enc, s.enc, "group {id:?}, threads={threads}");
                assert_eq!(b.members, s.members);
                assert_eq!(b.tree, s.tree);
                assert_eq!(b.outer_addr, s.outer_addr);
            }
            // Tenant-facing index works the same way.
            let (_, vni, addr, _) = &specs[7];
            assert_eq!(
                batch.group_id_for(*vni, *addr),
                serial.group_id_for(*vni, *addr)
            );
        }
    }

    #[test]
    fn header_for_unknown_group_is_none() {
        let ctl = new_controller();
        assert!(ctl.header_for(GroupId(9), HostId(0)).is_none());
    }

    #[test]
    fn member_role_predicates() {
        assert!(MemberRole::Sender.sends() && !MemberRole::Sender.receives());
        assert!(!MemberRole::Receiver.sends() && MemberRole::Receiver.receives());
        assert!(MemberRole::Both.sends() && MemberRole::Both.receives());
    }

    #[test]
    fn headers_differ_per_sender_but_share_downstream() {
        let mut ctl = new_controller();
        let members = vec![
            (HostId(0), MemberRole::Both),
            (HostId(42), MemberRole::Both),
            (HostId(57), MemberRole::Receiver),
        ];
        ctl.create_group(GroupId(1), Vni(5), TADDR, members);
        let h0 = ctl.header_for(GroupId(1), HostId(0)).unwrap();
        let h42 = ctl.header_for(GroupId(1), HostId(42)).unwrap();
        assert_ne!(h0.core, h42.core, "core bitmaps are sender-specific");
        assert_eq!(h0.d_leaf, h42.d_leaf, "downstream leaf rules are shared");
    }
}

#[cfg(test)]
mod migrate_tests {
    use super::*;

    #[test]
    fn migration_moves_the_member_and_merges_updates() {
        let topo = Clos::paper_example();
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
        let gid = GroupId(1);
        ctl.create_group(
            gid,
            Vni(1),
            Ipv4Addr::new(225, 6, 6, 6),
            [
                (HostId(0), MemberRole::Both),
                (HostId(9), MemberRole::Receiver),
                (HostId(42), MemberRole::Receiver),
            ],
        );
        // Migrate the receiver on host 9 (L1, pod 0) to host 57 (L7, pod 3).
        let updates = ctl.migrate(gid, HostId(9), HostId(57), MemberRole::Receiver);
        let g = ctl.group(gid).expect("group");
        assert!(!g.tree.contains(HostId(9)));
        assert!(g.tree.contains(HostId(57)));
        // Both endpoint hypervisors appear once in the merged set.
        assert!(updates.hypervisors.contains(&HostId(9)));
        assert!(updates.hypervisors.contains(&HostId(57)));
        // Self-migration is a no-op.
        let noop = ctl.migrate(gid, HostId(57), HostId(57), MemberRole::Receiver);
        assert!(noop.hypervisors.is_empty());
    }

    #[test]
    fn migration_preserves_delivery_semantics() {
        let topo = Clos::paper_example();
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
        let gid = GroupId(2);
        ctl.create_group(
            gid,
            Vni(2),
            Ipv4Addr::new(225, 6, 6, 7),
            [
                (HostId(0), MemberRole::Both),
                (HostId(20), MemberRole::Receiver),
            ],
        );
        let before = ctl.header_for(gid, HostId(0)).expect("header");
        ctl.migrate(gid, HostId(20), HostId(50), MemberRole::Receiver);
        let after = ctl.header_for(gid, HostId(0)).expect("header");
        assert_ne!(before, after, "sender header follows the receiver");
    }
}
