//! Churn integration: replay a generated join/leave stream through the
//! controller and verify its state stays consistent with ground truth —
//! trees match the membership, s-rule accounting never leaks, headers stay
//! within budget throughout.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use elmo::controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, GroupTree};
use elmo::workloads::{churn_events, initial_roles, GroupSizeDist, Role, Workload, WorkloadConfig};

fn to_role(r: Role) -> MemberRole {
    match r {
        Role::Sender => MemberRole::Sender,
        Role::Receiver => MemberRole::Receiver,
        Role::Both => MemberRole::Both,
    }
}

fn build_workload() -> (Clos, Workload, Vec<Vec<Role>>) {
    let topo = Clos::scaled_fabric(4, 6, 8); // 192 hosts
    let cfg = WorkloadConfig {
        tenants: 12,
        total_groups: 60,
        host_vm_cap: 20,
        placement_p: 1,
        min_group_size: 5,
        dist: GroupSizeDist::Wve,
        seed: 0xc0ffee,
    };
    let workload = Workload::generate(topo, cfg);
    let roles = initial_roles(&workload, cfg.seed);
    (topo, workload, roles)
}

#[test]
fn controller_tracks_ground_truth_through_churn() {
    let (topo, workload, roles) = build_workload();
    let layout = elmo::core::HeaderLayout::for_clos(&topo);
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));

    // Ground truth: per group, per VM, the role (receivers matter for trees).
    let mut truth: Vec<BTreeMap<u32, Role>> = Vec::new();
    for (gi, g) in workload.groups.iter().enumerate() {
        let tenant = &workload.tenants[g.tenant as usize];
        ctl.create_group(
            GroupId(gi as u64),
            Vni(g.tenant),
            Ipv4Addr::new(225, 1, (gi >> 8) as u8, gi as u8),
            g.members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (tenant.vms[vm as usize], to_role(r))),
        );
        truth.push(
            g.members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (vm, r))
                .collect(),
        );
    }

    let events = churn_events(&workload, 3_000, 0xc0ffee ^ 0xc4);
    for (step, e) in events.iter().enumerate() {
        let g = &workload.groups[e.group as usize];
        let tenant = &workload.tenants[g.tenant as usize];
        let host = tenant.vms[e.vm as usize];
        if e.join {
            ctl.join(GroupId(e.group as u64), host, to_role(e.role));
            truth[e.group as usize].insert(e.vm, e.role);
        } else {
            let old_role = truth[e.group as usize]
                .remove(&e.vm)
                .expect("member leaves");
            ctl.leave(GroupId(e.group as u64), host, to_role(old_role));
        }

        // Spot-check a rotating window of groups for full consistency (all
        // groups every step would be quadratic).
        if step % 97 == 0 {
            for gi in [e.group as usize, (e.group as usize + 7) % truth.len()] {
                let tenant = &workload.tenants[workload.groups[gi].tenant as usize];
                let expect_tree = GroupTree::new(
                    &topo,
                    truth[gi]
                        .iter()
                        .filter(|(_, r)| r.receives())
                        .map(|(&vm, _)| tenant.vms[vm as usize]),
                );
                let state = ctl.group(GroupId(gi as u64)).expect("group exists");
                assert_eq!(
                    state.tree, expect_tree,
                    "group {gi} tree diverged at step {step}"
                );
                // Headers for a sampled sender stay within budget and decode.
                if let Some(sender) = state.sender_hosts().next() {
                    let header = ctl.header_for(GroupId(gi as u64), sender).expect("header");
                    let bytes = header.encode(&layout);
                    assert!(bytes.len() <= 325, "header {} > budget", bytes.len());
                    let (decoded, _) =
                        elmo::core::ElmoHeader::decode(&bytes, &layout).expect("decodes");
                    assert_eq!(decoded, header);
                }
            }
        }
    }

    // Final global check: every group's tree matches truth and the s-rule
    // tracker equals the sum of installed encodings (no leaks).
    let mut expected_srules = 0usize;
    for (gi, members) in truth.iter().enumerate() {
        let tenant = &workload.tenants[workload.groups[gi].tenant as usize];
        let expect_tree = GroupTree::new(
            &topo,
            members
                .iter()
                .filter(|(_, r)| r.receives())
                .map(|(&vm, _)| tenant.vms[vm as usize]),
        );
        let state = ctl.group(GroupId(gi as u64)).expect("group exists");
        assert_eq!(state.tree, expect_tree, "group {gi} final tree");
        expected_srules += state.enc.d_leaf.s_rules.len() + state.enc.d_spine.s_rules.len();
    }
    let tracked: usize = ctl.srules().leaf_usages().iter().sum::<usize>()
        + ctl.srules().pod_usages().iter().sum::<usize>();
    assert_eq!(tracked, expected_srules, "s-rule accounting leaked");
}

trait Receives {
    fn receives(&self) -> bool;
}

impl Receives for Role {
    fn receives(&self) -> bool {
        matches!(self, Role::Receiver | Role::Both)
    }
}
