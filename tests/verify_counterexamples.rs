//! Seeded-corruption tests for the `elmo-verify` static checker: each test
//! hand-corrupts one aspect of an otherwise consistent compiled state and
//! asserts the checker reports exactly that corruption with a minimal
//! witness (the switch/rule/host where the property first breaks).

use std::net::Ipv4Addr;

use elmo_controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo_core::PortBitmap;
use elmo_dataplane::{Fabric, SwitchConfig};
use elmo_net::vxlan::Vni;
use elmo_topology::{Clos, HostId, LeafId, PodId, SwitchRef};
use elmo_verify::{check_state, check_state_with, Report, VerifyOptions, ViolationKind};

const TADDR: Ipv4Addr = Ipv4Addr::new(225, 1, 2, 3);

/// One group spread over every leaf of the paper-example fabric, compiled
/// under a header budget tight enough that both downstream layers are
/// forced to spill into s-rules — so every corruption below has a real
/// installed rule to target.
fn setup() -> (Controller, Fabric, GroupId) {
    let topo = Clos::paper_example();
    let cfg = ControllerConfig {
        header_budget_bytes: 14,
        ..ControllerConfig::paper_default(0)
    };
    let mut ctl = Controller::new(topo, cfg);
    let gid = GroupId(1);
    // One member per leaf, on a different port each, so no two leaf
    // bitmaps are identical and p-rule sharing cannot absorb them all.
    // Pods 2 and 3 get a single member leaf so the spine-layer bitmaps
    // split into three classes (> h_spine_max).
    let members: Vec<(HostId, MemberRole)> = [0u32, 9, 18, 27, 36, 56]
        .iter()
        .map(|&h| (HostId(h), MemberRole::Both))
        .collect();
    ctl.create_group(gid, Vni(7), TADDR, members);
    let state = ctl.group(gid).expect("group exists");
    assert!(!state.unicast_fallback, "group must compile to multicast");
    assert!(
        !state.enc.d_leaf.s_rules.is_empty(),
        "setup needs leaf s-rules to corrupt; got {:?}",
        state.enc.d_leaf
    );
    assert!(
        !state.enc.d_spine.s_rules.is_empty(),
        "setup needs pod s-rules to corrupt; got {:?}",
        state.enc.d_spine
    );

    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .expect("leaf table has room");
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .expect("spine tables have room");
    }
    (ctl, fabric, gid)
}

fn kinds(report: &Report) -> Vec<ViolationKind> {
    report.violations.iter().map(|v| v.kind).collect()
}

#[test]
fn consistent_state_is_clean() {
    let (ctl, fabric, _) = setup();
    let report = check_state(&ctl, &fabric);
    assert!(
        report.ok(),
        "unexpected violations: {:?}",
        report.violations
    );
}

#[test]
fn flipped_bitmap_bit_yields_mismatch_and_loss() {
    let (ctl, mut fabric, gid) = setup();
    let state = ctl.group(gid).expect("group exists");
    let (leaf, bm) = state.enc.d_leaf.s_rules[0].clone();
    let member_bit = bm.iter_ones().next().expect("s-rule has a member port");
    let mut corrupted = bm.clone();
    corrupted.clear(member_bit);
    fabric
        .leaf_mut(LeafId(leaf))
        .install_srule(state.outer_addr, corrupted)
        .expect("overwrite in place");

    let report = check_state(&ctl, &fabric);
    assert!(!report.ok());
    let mismatch = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::RuleMismatch)
        .expect("flipped bit must surface as a rule mismatch");
    assert_eq!(mismatch.group, Some(gid));
    assert_eq!(mismatch.witness.switch, Some(SwitchRef::Leaf(LeafId(leaf))));
    // The receiver behind the cleared bit is statically unreachable, and
    // the loss witness pins the exact host and the leaf where it drops.
    let loss = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::Loss)
        .expect("cleared member bit must surface as loss");
    let lost = loss.witness.host.expect("loss names the unreachable host");
    assert!(state.receiver_hosts().any(|h| h == lost));
}

#[test]
fn over_budget_header_detected() {
    let (ctl, fabric, gid) = setup();
    // Model a post-admission config tightening: the state was compiled
    // against the setup budget, then ops lowers the ceiling below what
    // the encoded headers need.
    let opts = VerifyOptions {
        header_budget: Some(2),
        ..VerifyOptions::default()
    };
    let report = check_state_with(&ctl, &fabric, &[], &opts);
    let budget = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::HeaderBudget)
        .expect("headers larger than the budget must be reported");
    assert_eq!(budget.group, Some(gid));
    assert!(budget.witness.host.is_some(), "witness names the sender");
}

#[test]
fn stale_srule_detected_with_live_group_attribution() {
    let (ctl, mut fabric, gid) = setup();
    let state = ctl.group(gid).expect("group exists");

    // An s-rule for an address no live group uses: stale, unattributed.
    fabric
        .leaf_mut(LeafId(0))
        .install_srule(Ipv4Addr::new(230, 9, 9, 9), PortBitmap::from_ports(8, [0]))
        .expect("room");
    // The live group's address installed on a leaf its encoding never
    // touches: stale, and the witness names the group it shadows.
    let foreign_leaf = (0..8)
        .map(LeafId)
        .find(|l| {
            !state
                .enc
                .d_leaf
                .s_rules
                .iter()
                .any(|(leaf, _)| *leaf == l.0)
        })
        .expect("some leaf has no encoded s-rule");
    fabric
        .leaf_mut(foreign_leaf)
        .install_srule(state.outer_addr, PortBitmap::from_ports(8, [0]))
        .expect("room");

    let report = check_state(&ctl, &fabric);
    let stale: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::StaleSRule)
        .collect();
    assert_eq!(
        stale.len(),
        2,
        "both planted rules must be flagged: {stale:?}"
    );
    assert!(stale.iter().any(|v| v.group.is_none()));
    assert!(stale
        .iter()
        .any(|v| v.group == Some(gid) && v.witness.switch == Some(SwitchRef::Leaf(foreign_leaf))));
}

#[test]
fn srule_escaping_downstream_domain_is_a_loop() {
    let (ctl, mut fabric, gid) = setup();
    let state = ctl.group(gid).expect("group exists");
    let (leaf, _) = state.enc.d_leaf.s_rules[0].clone();
    let up_port = ctl.topo().leaf_down_ports();
    // A downstream rule whose bitmap targets an up-facing port sends the
    // copy back toward the spine layer: a cycle in the rule graph (the
    // pop order only ever descends).
    fabric
        .leaf_mut(LeafId(leaf))
        .install_srule(
            state.outer_addr,
            PortBitmap::from_ports(up_port + 1, [up_port]),
        )
        .expect("overwrite in place");

    let report = check_state(&ctl, &fabric);
    let looped = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::Loop)
        .expect("up-facing downstream bit must be reported as a loop");
    assert_eq!(looped.witness.switch, Some(SwitchRef::Leaf(LeafId(leaf))));
}

#[test]
fn removed_srule_yields_missing_and_loss() {
    let (ctl, mut fabric, gid) = setup();
    let state = ctl.group(gid).expect("group exists");
    let (leaf, _) = state.enc.d_leaf.s_rules[0].clone();
    assert!(fabric
        .leaf_mut(LeafId(leaf))
        .remove_srule(&state.outer_addr));

    let report = check_state(&ctl, &fabric);
    let missing = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::MissingSRule)
        .expect("removed s-rule must be reported");
    assert_eq!(missing.group, Some(gid));
    assert_eq!(missing.witness.switch, Some(SwitchRef::Leaf(LeafId(leaf))));
    assert!(kinds(&report).contains(&ViolationKind::Loss));
}

#[test]
fn diverging_pod_replica_detected() {
    let (ctl, mut fabric, gid) = setup();
    let state = ctl.group(gid).expect("group exists");
    let (pod, bm) = state.enc.d_spine.s_rules[0].clone();
    let victim = ctl.topo().spine_in_pod(PodId(pod), 1);
    let mut skewed = bm.clone();
    let bit = bm.iter_ones().next().expect("pod rule has a member leaf");
    skewed.clear(bit);
    fabric
        .spine_mut(victim)
        .install_srule(state.outer_addr, skewed)
        .expect("overwrite in place");

    let report = check_state(&ctl, &fabric);
    let div = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::ReplicaDivergence)
        .expect("skewed replica must break ECMP path-independence");
    assert_eq!(div.group, Some(gid));
    assert_eq!(div.witness.switch, Some(SwitchRef::Spine(victim)));
}
