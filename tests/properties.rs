//! Property-based tests (proptest) over the core invariants:
//!
//! * the Elmo header wire format roundtrips for arbitrary rule structures;
//! * Algorithm 1 covers every input switch with a superset bitmap, within
//!   the redundancy budget, never exceeding Hmax/Kmax;
//! * per-sender headers always fit the byte budget;
//! * port bitmaps behave like sets;
//! * the placement-signature cache is invariant under switch relabeling
//!   and port permutation.

// Requires the real `proptest` crate, which is not vendored in this
// offline workspace. Enable with `cargo test --features proptest` when
// the registry is reachable.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use elmo::controller::srules::SRuleSpace;
use elmo::core::{
    cluster_layer, cluster_layer_cached, encode_group, header_for_sender, CacheOutcome, CacheShard,
    ClusterConfig, ClusterScratch, DownstreamRule, ElmoHeader, EncodeCache, EncoderConfig,
    HeaderLayout, PortBitmap, RedundancyMode, UpstreamRule, CACHE_MIN_ROWS,
};
use elmo::topology::{Clos, GroupTree, HostId, LeafId, PodId, UpstreamCover};

fn example_layout() -> HeaderLayout {
    HeaderLayout::for_clos(&Clos::paper_example())
}

prop_compose! {
    fn arb_bitmap(width: usize)(bits in proptest::collection::vec(any::<bool>(), width)) -> PortBitmap {
        PortBitmap::from_ports(width, bits.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i))
    }
}

prop_compose! {
    fn arb_upstream(down: usize, up: usize)(
        d in arb_bitmap(down),
        m in any::<bool>(),
        u in arb_bitmap(up),
    ) -> UpstreamRule {
        UpstreamRule { down: d, multipath: m, up: u }
    }
}

fn arb_rules(
    width: usize,
    id_bits: usize,
    max_rules: usize,
) -> impl Strategy<Value = Vec<DownstreamRule>> {
    let max_id = (1u32 << id_bits) - 1;
    proptest::collection::vec(
        (
            arb_bitmap(width),
            proptest::collection::btree_set(0..=max_id, 1..=3),
        ),
        0..=max_rules,
    )
    .prop_map(|rules| {
        rules
            .into_iter()
            .map(|(bitmap, ids)| DownstreamRule {
                bitmap,
                switches: ids.into_iter().collect(),
            })
            .collect()
    })
}

prop_compose! {
    fn arb_header()(
        u_leaf in proptest::option::of(arb_upstream(8, 2)),
        u_spine in proptest::option::of(arb_upstream(2, 2)),
        core in proptest::option::of(arb_bitmap(4)),
        d_spine in arb_rules(2, 2, 3),
        d_spine_default in proptest::option::of(arb_bitmap(2)),
        d_leaf in arb_rules(8, 3, 5),
        d_leaf_default in proptest::option::of(arb_bitmap(8)),
    ) -> ElmoHeader {
        ElmoHeader { u_leaf, u_spine, core, d_spine, d_spine_default, d_leaf, d_leaf_default }
    }
}

proptest! {
    /// Any structurally valid header survives encode -> decode unchanged,
    /// and the encoded size matches the accounting.
    #[test]
    fn header_roundtrip(header in arb_header()) {
        let layout = example_layout();
        let bytes = header.encode(&layout);
        prop_assert_eq!(bytes.len(), header.byte_len(&layout));
        let (decoded, used) = ElmoHeader::decode(&bytes, &layout).expect("decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, header);
    }

    /// Truncating an encoded header anywhere never panics — it errors.
    #[test]
    fn truncated_headers_error_cleanly(header in arb_header(), cut_frac in 0.0f64..1.0) {
        let layout = example_layout();
        let bytes = header.encode(&layout);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            // Either an error, or (if the cut landed past all content) a
            // successful parse of a prefix; both are fine — no panic.
            let _ = ElmoHeader::decode(&bytes[..cut], &layout);
        }
    }

    /// Bitmap algebra: union is commutative and monotone; Hamming distance
    /// is a metric restricted to our uses.
    #[test]
    fn bitmap_algebra(a in arb_bitmap(48), b in arb_bitmap(48)) {
        prop_assert_eq!(a.or(&b), b.or(&a));
        prop_assert_eq!(a.union_count(&b), a.or(&b).count_ones());
        prop_assert!(a.is_subset_of(&a.or(&b)));
        prop_assert!(b.is_subset_of(&a.or(&b)));
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert_eq!(a.hamming(&a), 0);
        let ones: Vec<usize> = a.iter_ones().collect();
        prop_assert_eq!(ones.len(), a.count_ones());
        prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
    }

    /// Algorithm 1 invariants, for arbitrary layers and budgets.
    #[test]
    fn clustering_invariants(
        bitmaps in proptest::collection::vec(arb_bitmap(16), 1..24),
        r in 0usize..8,
        h_max in 0usize..10,
        k_max in 1usize..4,
        srule_budget in 0usize..10,
    ) {
        let inputs: Vec<(u32, PortBitmap)> =
            bitmaps.into_iter().enumerate().map(|(i, b)| (i as u32, b)).collect();
        let cfg = ClusterConfig { r, h_max, bit_budget: usize::MAX, id_bits: 8, k_max, mode: RedundancyMode::Sum };
        let mut left = srule_budget;
        let mut alloc = |_s: u32| {
            if left > 0 { left -= 1; true } else { false }
        };
        let enc = cluster_layer(&inputs, &cfg, &mut alloc);

        // Every input switch is covered by exactly one rule source, and its
        // assigned bitmap is a superset of its exact ports.
        for (s, bm) in &inputs {
            let assigned = enc.bitmap_for(*s);
            prop_assert!(assigned.is_some(), "switch {} uncovered", s);
            prop_assert!(bm.is_subset_of(assigned.expect("assigned")));
        }
        // Budgets respected.
        prop_assert!(enc.p_rules.len() <= h_max);
        prop_assert!(enc.p_rules.iter().all(|rule| rule.switches.len() <= k_max));
        prop_assert!(enc.s_rules.len() <= srule_budget);
        // Redundancy bound: for every shared p-rule, the summed Hamming
        // distance of members to the output stays within R.
        for rule in &enc.p_rules {
            let total: usize = rule
                .switches
                .iter()
                .map(|s| {
                    inputs.iter().find(|(i, _)| i == s).expect("member exists").1.hamming(&rule.bitmap)
                })
                .sum();
            prop_assert!(total <= r || rule.switches.len() == 1, "rule over budget");
        }
        // No switch appears in two rule sources.
        let mut seen = std::collections::BTreeSet::new();
        for s in enc
            .p_rules
            .iter()
            .flat_map(|rule| rule.switches.iter())
            .chain(enc.s_rules.iter().map(|(s, _)| s))
            .chain(enc.default_switches.iter())
        {
            prop_assert!(seen.insert(*s), "switch {} double-assigned", s);
        }
        prop_assert_eq!(seen.len(), inputs.len());
    }

    /// Whole-group encodings always produce headers within the byte budget,
    /// for every sender.
    #[test]
    fn headers_fit_budget(
        seeds in proptest::collection::btree_set(0u32..64, 2..16),
        r in 0usize..13,
        budget in 40usize..120,
    ) {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        let members: Vec<HostId> = seeds.into_iter().map(HostId).collect();
        let tree = GroupTree::new(&topo, members.iter().copied());
        let encoder = EncoderConfig::with_budget(&layout, budget, r);
        let mut space = SRuleSpace::unlimited(&topo);
        let enc = {
            let cell = std::cell::RefCell::new(&mut space);
            let mut sa = |p: PodId| cell.borrow_mut().alloc_pod(p);
            let mut la = |l: LeafId| cell.borrow_mut().alloc_leaf(l);
            encode_group(&topo, &tree, &encoder, &mut sa, &mut la)
        };
        for &sender in &members {
            let header = header_for_sender(
                &topo, &layout, &tree, &enc, sender, &UpstreamCover::multipath(),
            );
            let bytes = header.encode(&layout);
            prop_assert!(
                bytes.len() <= budget,
                "sender {}: {} > {} bytes", sender, bytes.len(), budget
            );
            // And it still roundtrips.
            let (decoded, _) = ElmoHeader::decode(&bytes, &layout).expect("decodes");
            prop_assert_eq!(decoded, header);
        }
    }

    /// The placement-signature cache is invariant under the symmetry it
    /// quotients out: a monotone switch relabeling plus a global port
    /// permutation maps a cached layer onto a cache hit, and the
    /// rehydrated encoding is bit-identical to clustering the relabeled
    /// layer directly. When the original layer bypasses the cache (fast
    /// path), the relabeled twin must bypass it too — the decision is a
    /// function of the signature alone.
    #[test]
    fn signature_is_invariant_under_switch_relabeling(
        shapes in proptest::collection::vec(
            (0usize..16, arb_bitmap(16), 1u32..8, 1u32..8),
            CACHE_MIN_ROWS..CACHE_MIN_ROWS + 16,
        ),
        perm in Just((0..16usize).collect::<Vec<usize>>()).prop_shuffle(),
        offset in 0u32..100,
    ) {
        let width = 16;
        // Layer A (ascending ids, at least one port per bitmap) and its
        // relabeled twin B: fresh monotone ids, every bitmap mapped
        // through the same port permutation.
        let mut id_a = 0u32;
        let mut id_b = offset;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (must, bm, gap_a, gap_b) in &shapes {
            id_a += gap_a;
            id_b += gap_b;
            let mut bm = bm.clone();
            bm.set(*must);
            let mapped = PortBitmap::from_ports(width, bm.iter_ones().map(|p| perm[p]));
            a.push((id_a, bm));
            b.push((id_b, mapped));
        }
        // Pressed config: with > Hmax distinct bitmaps the greedy
        // (cacheable) path runs; identical bitmaps may still take the
        // fast path, which exercises the bypass branch below.
        let cfg = ClusterConfig {
            r: 6,
            h_max: 2,
            bit_budget: usize::MAX,
            id_bits: 8,
            k_max: 4,
            mode: RedundancyMode::Sum,
        };
        let mut alloc = |_s: u32| true;
        let direct_b = cluster_layer(&b, &cfg, &mut alloc);

        let mut base = EncodeCache::new();
        let mut shard = CacheShard::new();
        let mut outcomes = Vec::new();
        let mut scratch = ClusterScratch::new();
        let _ = cluster_layer_cached(&a, &cfg, &base, &mut shard, &mut outcomes, &mut scratch);
        let a_cached = !outcomes.is_empty();
        base.absorb(std::mem::take(&mut outcomes));

        let from_cache =
            cluster_layer_cached(&b, &cfg, &base, &mut shard, &mut outcomes, &mut scratch);
        prop_assert_eq!(&from_cache, &direct_b, "cached result differs from direct clustering");
        if a_cached {
            prop_assert_eq!(outcomes.len(), 1);
            prop_assert!(
                matches!(outcomes[0], CacheOutcome::Hit),
                "relabeled twin must hit the warmed cache"
            );
        } else {
            prop_assert!(outcomes.is_empty(), "bypass decision must be signature-invariant");
        }
    }

    /// The receiver trees are placement-faithful: every member maps to a
    /// leaf/pod that reports it back.
    #[test]
    fn tree_projection_is_consistent(seeds in proptest::collection::btree_set(0u32..64, 1..20)) {
        let topo = Clos::paper_example();
        let members: Vec<HostId> = seeds.into_iter().map(HostId).collect();
        let tree = GroupTree::new(&topo, members.iter().copied());
        prop_assert_eq!(tree.size(), members.len());
        for &h in &members {
            let leaf = topo.leaf_of_host(h);
            prop_assert!(tree.hosts_on_leaf(leaf).contains(&h));
            prop_assert!(tree.leaves_in_pod(topo.pod_of_leaf(leaf)).contains(&leaf));
        }
        let leaf_total: usize = tree.leaves().map(|l| tree.hosts_on_leaf(l).len()).sum();
        prop_assert_eq!(leaf_total, members.len());
    }
}
