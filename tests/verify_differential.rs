//! Differential-mode acceptance: the static walk must agree byte for byte
//! with the fast-path fabric replay on at least 100 sampled groups, and
//! the walk's redundancy accounting must match the independent traffic
//! model on every checked (group, sender) pair — over both the serial
//! replay loop and the sharded multi-core engine.

use elmo_core::HeaderLayout;
use elmo_sim::verify_exp::{self, VerifyExpConfig};
use elmo_topology::Clos;
use elmo_workloads::{GroupSizeDist, WorkloadConfig};

fn run_at(replay_threads: usize) {
    let topo = Clos::scaled_fabric(6, 24, 16);
    let layout = HeaderLayout::for_clos(&topo);
    let mut wl = WorkloadConfig::scaled(&topo, 1, GroupSizeDist::Wve);
    wl.total_groups = 400;
    let run = verify_exp::run(
        topo,
        wl,
        &VerifyExpConfig {
            r: 12,
            header_budget: layout.max_header_bytes(2, 30, 2),
            threads: 0,
            samples: 120,
            seed: 0xe1_40,
            replay_threads,
        },
    );
    assert!(
        run.report.ok(),
        "expected a clean report at {replay_threads} shards, got {:?}",
        run.report.counts_by_kind()
    );
    assert!(
        run.differential_sampled >= 100,
        "differential mode replayed only {} groups",
        run.differential_sampled
    );
    // Every collected sender walk was diffed against the sweeps' traffic
    // model; a clean report means links, fixed bytes, and header length
    // all agreed exactly.
    assert!(
        run.traffic_cross_checked >= run.differential_sampled,
        "only {} sender walks were cross-checked",
        run.traffic_cross_checked
    );
}

#[test]
fn differential_replay_matches_on_100_sampled_groups() {
    run_at(1);
}

#[test]
fn differential_replay_matches_through_the_sharded_engine() {
    run_at(4);
}
