//! The two encoding paths — the evaluation harness's standalone
//! `encode_group` loop and the controller's managed path — must produce
//! identical encodings for identical inputs, and both must respect the
//! hardware envelope (RMT's 512-byte parser header vector) for every
//! sender of every group.

use std::net::Ipv4Addr;

use elmo::controller::srules::SRuleSpace;
use elmo::controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo::core::{encode_group, HeaderLayout, UpstreamRule};
use elmo::dataplane::ElmoPacketRepr;
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, GroupTree};
use elmo::workloads::{GroupSizeDist, Workload, WorkloadConfig};

fn workload(topo: Clos) -> Workload {
    Workload::generate(
        topo,
        WorkloadConfig {
            tenants: 25,
            total_groups: 200,
            host_vm_cap: 20,
            placement_p: 12,
            min_group_size: 5,
            dist: GroupSizeDist::Wve,
            seed: 0xabcd,
        },
    )
}

#[test]
fn controller_and_standalone_encoders_agree() {
    let topo = Clos::scaled_fabric(4, 12, 16);
    let w = workload(topo);
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    let mut space = SRuleSpace::unlimited(&topo);
    let encoder = *ctl.encoder_config();

    for (gi, g) in w.groups.iter().enumerate() {
        let hosts = w.member_hosts(g);
        ctl.create_group(
            GroupId(gi as u64),
            Vni(g.tenant),
            Ipv4Addr::new(225, 2, (gi >> 8) as u8, gi as u8),
            hosts.iter().map(|&h| (h, MemberRole::Both)),
        );
        let tree = GroupTree::new(&topo, hosts.iter().copied());
        let standalone = {
            let cell = std::cell::RefCell::new(&mut space);
            let mut sa = |p| cell.borrow_mut().alloc_pod(p);
            let mut la = |l| cell.borrow_mut().alloc_leaf(l);
            encode_group(&topo, &tree, &encoder, &mut sa, &mut la)
        };
        let managed = &ctl.group(GroupId(gi as u64)).expect("group").enc;
        assert_eq!(&standalone, managed, "group {gi} encodings diverged");
    }
}

#[test]
fn every_header_fits_the_rmt_parser_envelope() {
    let topo = Clos::facebook_fabric();
    let layout = HeaderLayout::for_clos(&topo);
    let w = Workload::generate(
        topo,
        WorkloadConfig {
            tenants: 10,
            total_groups: 60,
            host_vm_cap: 20,
            placement_p: 1, // dispersed = biggest headers
            min_group_size: 5,
            dist: GroupSizeDist::Uniform,
            seed: 0xfeed,
        },
    );
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    for (gi, g) in w.groups.iter().enumerate() {
        let hosts = w.member_hosts(g);
        ctl.create_group(
            GroupId(gi as u64),
            Vni(g.tenant),
            Ipv4Addr::new(225, 3, (gi >> 8) as u8, gi as u8),
            hosts.iter().map(|&h| (h, MemberRole::Both)),
        );
        for &sender in hosts.iter().take(3) {
            let header = ctl.header_for(GroupId(gi as u64), sender).expect("header");
            let elmo_bytes = header.encode(&layout).len();
            assert!(elmo_bytes <= 325, "group {gi}: {elmo_bytes} > 325");
            assert!(
                ElmoPacketRepr::OUTER_LEN + elmo_bytes <= 512,
                "group {gi}: header vector {} > RMT's 512",
                ElmoPacketRepr::OUTER_LEN + elmo_bytes
            );
        }
    }
}

#[test]
fn worst_case_static_header_is_within_the_parser_limit() {
    // The absolute worst header our layout can emit for the paper fabric:
    // full upstream rules, a full core bitmap, two max-width spine rules,
    // and leaf rules until the byte budget refuses more.
    let topo = Clos::facebook_fabric();
    let layout = HeaderLayout::for_clos(&topo);
    let mut header = elmo::core::ElmoHeader::empty();
    header.u_leaf = Some(UpstreamRule {
        down: full(layout.leaf_down_ports),
        multipath: false,
        up: full(layout.leaf_up_ports),
    });
    header.u_spine = Some(UpstreamRule {
        down: full(layout.spine_down_ports),
        multipath: false,
        up: full(layout.spine_up_ports),
    });
    header.core = Some(full(layout.core_ports));
    for pod in 0..2u32 {
        header.d_spine.push(elmo::core::DownstreamRule {
            bitmap: full(layout.spine_down_ports),
            switches: (0..8).map(|i| pod * 6 + i % 12).collect(),
        });
    }
    header.d_spine_default = Some(full(layout.spine_down_ports));
    header.d_leaf_default = Some(full(layout.leaf_down_ports));
    let mut i = 0u32;
    while header.byte_len(&layout) + layout.d_leaf_rule_bits(8).div_ceil(8) <= 325 {
        header.d_leaf.push(elmo::core::DownstreamRule {
            bitmap: full(layout.leaf_down_ports),
            switches: (0..8).map(|k| (i * 8 + k) % 576).collect(),
        });
        i += 1;
    }
    let bytes = header.encode(&layout);
    assert!(bytes.len() <= 325);
    assert!(ElmoPacketRepr::OUTER_LEN + bytes.len() <= 512);
    assert!(header.d_leaf.len() >= 15, "budget admits a real rule count");
    // And it still roundtrips at that size.
    let (decoded, _) = elmo::core::ElmoHeader::decode(&bytes, &layout).expect("decodes");
    assert_eq!(decoded, header);

    fn full(width: usize) -> elmo::core::PortBitmap {
        elmo::core::PortBitmap::from_ports(width, 0..width)
    }
}
