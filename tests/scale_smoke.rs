//! Workload-scale smoke test: install a few thousand controller-managed
//! groups on one shared fabric (the realistic deployment: every group's
//! s-rules coexist in the same group tables) and verify a sample of them
//! deliver exactly — membership, isolation, and table capacity all at once.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use elmo::controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig, VmSlot};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, HostId, LeafId, PodId};
use elmo::workloads::{GroupSizeDist, Workload, WorkloadConfig};

#[test]
fn thousands_of_groups_share_one_fabric() {
    let topo = Clos::scaled_fabric(4, 8, 16); // 512 hosts
    let wl = Workload::generate(
        topo,
        WorkloadConfig {
            tenants: 40,
            total_groups: 2_000,
            host_vm_cap: 20,
            placement_p: 12,
            min_group_size: 5,
            dist: GroupSizeDist::Wve,
            seed: 0x5ca1e,
        },
    );
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let mut fabric = Fabric::new(topo, SwitchConfig::default());

    // Install everything: controller state plus every group's s-rules in the
    // shared group tables.
    for (gi, g) in wl.groups.iter().enumerate() {
        let hosts = wl.member_hosts(g);
        ctl.create_group(
            GroupId(gi as u64),
            Vni(g.tenant),
            Ipv4Addr::new(225, 4, (gi >> 8) as u8, gi as u8),
            hosts.iter().map(|&h| (h, MemberRole::Both)),
        );
        let state = ctl.group(GroupId(gi as u64)).expect("group");
        for (leaf, bm) in &state.enc.d_leaf.s_rules {
            fabric
                .leaf_mut(LeafId(*leaf))
                .install_srule(state.outer_addr, bm.clone())
                .expect("leaf group table never exhausts at this scale");
        }
        for (pod, bm) in &state.enc.d_spine.s_rules {
            fabric
                .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
                .expect("spine group table never exhausts at this scale");
        }
    }

    // Sample every 97th group; verify exact delivery (R = 0).
    let mut verified = 0;
    for gi in (0..wl.groups.len()).step_by(97) {
        let gid = GroupId(gi as u64);
        let state = ctl.group(gid).expect("group");
        let members: Vec<HostId> = state.tree.members().to_vec();
        let sender = members[gi % members.len()];
        let header = ctl.header_for(gid, sender).expect("header");
        let (vni, taddr, outer) = (state.vni, state.tenant_addr, state.outer_addr);
        let mut hv = HypervisorSwitch::new(sender);
        hv.install_flow(
            vni,
            taddr,
            SenderFlow::new(outer, vni, &header, ctl.layout(), vec![]),
        );
        let pkt = hv.send(vni, taddr, b"scale smoke", ctl.layout()).remove(0);
        let got: BTreeSet<HostId> = fabric
            .inject(sender, pkt)
            .into_iter()
            .filter_map(|(h, bytes)| {
                let mut rx = HypervisorSwitch::new(h);
                rx.subscribe(outer, VmSlot(0));
                (!rx.receive(&bytes, ctl.layout()).is_empty()).then_some(h)
            })
            .collect();
        let expected: BTreeSet<HostId> = members.iter().copied().filter(|&h| h != sender).collect();
        assert_eq!(got, expected, "group {gi} mis-delivered");
        verified += 1;
    }
    assert!(verified >= 20, "sampled {verified} groups");
    assert_eq!(ctl.group_count(), 2_000);
}
