//! Delta re-encode properties: the incremental churn engine must be
//! *observationally invisible*. Whatever prefix of a churn stream the
//! controller absorbs through in-place patches, its state must be bit for
//! bit what a from-scratch controller would hold — and a join undone by a
//! leave must restore the exact prior encoding while the group's header
//! epoch keeps moving forward.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use elmo::controller::{Controller, ControllerConfig, GroupId, GroupSpec, MemberRole};
use elmo::net::vxlan::Vni;
use elmo::sim::churn_exp::{build_controller, replay, states_identical, ChurnExpConfig};
use elmo::topology::{Clos, HostId};
use elmo::workloads::{churn_bursts, initial_roles, GroupSizeDist, Role, Workload, WorkloadConfig};

fn to_role(r: Role) -> MemberRole {
    match r {
        Role::Sender => MemberRole::Sender,
        Role::Receiver => MemberRole::Receiver,
        Role::Both => MemberRole::Both,
    }
}

fn small_workload(seed: u64) -> (Clos, Workload, Vec<Vec<Role>>) {
    let topo = Clos::scaled_fabric(4, 6, 8); // 192 hosts
    let mut wl = WorkloadConfig::scaled(&topo, 12, GroupSizeDist::Wve);
    wl.total_groups = 40;
    wl.tenants = 10;
    wl.seed = seed;
    let workload = Workload::generate(topo, wl);
    let roles = initial_roles(&workload, wl.seed);
    (topo, workload, roles)
}

/// Compare the churned controller's per-group state against a fresh
/// controller, ignoring epochs (the fresh build never churned, so its
/// epochs are all zero by construction).
fn assert_groups_match(churned: &Controller, fresh: &Controller, at: &str) {
    let mut a: Vec<_> = churned.groups().collect();
    let mut b: Vec<_> = fresh.groups().collect();
    a.sort_unstable_by_key(|g| g.id.0);
    b.sort_unstable_by_key(|g| g.id.0);
    assert_eq!(a.len(), b.len(), "group count at {at}");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id, "group id at {at}");
        assert_eq!(x.tree, y.tree, "group {:?} tree at {at}", x.id);
        assert_eq!(x.enc, y.enc, "group {:?} encoding at {at}", x.id);
        assert_eq!(
            x.unicast_fallback, y.unicast_fallback,
            "group {:?} fallback flag at {at}",
            x.id
        );
    }
}

/// At every burst boundary of a churn stream, the delta-path controller's
/// state is bit-identical to a fresh controller that `create_group`s the
/// current membership from scratch. An unconstrained header budget keeps
/// every layer spill-free, so the comparison covers exactly the rules the
/// patcher rewrites.
#[test]
fn every_prefix_matches_a_fresh_build() {
    let (topo, workload, roles) = small_workload(0xde1a);
    let cfg = ChurnExpConfig {
        r: 12,
        header_budget: 10_000,
        threads: 1,
        events: 900,
        burst: 300,
        seed: 0x51,
        delta: true,
        verify_each_burst: false,
    };
    let mut ctl = build_controller(topo, &workload, &roles, &cfg);

    // Ground truth per (group, vm): the role each member currently holds.
    let mut truth: Vec<BTreeMap<u32, Role>> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            g.members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (vm, r))
                .collect()
        })
        .collect();

    let mut checkpoints = 0;
    for burst in churn_bursts(&workload, cfg.events, cfg.seed, cfg.burst) {
        for e in &burst {
            let g = &workload.groups[e.group as usize];
            let tenant = &workload.tenants[g.tenant as usize];
            let host = tenant.vms[e.vm as usize];
            if e.join {
                ctl.join(GroupId(e.group as u64), host, to_role(e.role));
                truth[e.group as usize].insert(e.vm, e.role);
            } else {
                let old_role = truth[e.group as usize]
                    .remove(&e.vm)
                    .expect("generator only emits leaves for members");
                ctl.leave(GroupId(e.group as u64), host, to_role(old_role));
            }
        }
        checkpoints += 1;
        // Fresh build of the current membership, same config and addresses.
        let mut ctl_cfg = ControllerConfig::paper_default(cfg.r);
        ctl_cfg.header_budget_bytes = cfg.header_budget;
        let mut fresh = Controller::new(topo, ctl_cfg);
        let specs: Vec<GroupSpec> = truth
            .iter()
            .enumerate()
            .map(|(gi, members)| {
                let tenant = &workload.tenants[workload.groups[gi].tenant as usize];
                (
                    GroupId(gi as u64),
                    Vni(workload.groups[gi].tenant),
                    Ipv4Addr::new(225, (gi >> 16) as u8, (gi >> 8) as u8, gi as u8),
                    members
                        .iter()
                        .map(|(&vm, &r)| (tenant.vms[vm as usize], to_role(r)))
                        .collect(),
                )
            })
            .collect();
        fresh.create_groups_batch(&specs, 1);
        assert_groups_match(&ctl, &fresh, &format!("checkpoint {checkpoints}"));
    }
    assert_eq!(checkpoints, 3);
    assert!(
        ctl.churn_stats().delta_hits > 0,
        "stream exercised no delta patches"
    );
}

/// Under the paper's constrained 325-byte budget (where escalations and
/// refusals actually happen), a delta-on and a delta-off controller walk
/// the same stream in lockstep: bit-identical state at every burst
/// boundary, not just at the end.
#[test]
fn delta_on_and_off_agree_at_every_burst() {
    let (topo, workload, roles) = small_workload(0xde1b);
    let cfg_on = ChurnExpConfig {
        r: 12,
        header_budget: 325,
        threads: 1,
        events: 800,
        burst: 200,
        seed: 0x52,
        delta: true,
        verify_each_burst: false,
    };
    let cfg_off = ChurnExpConfig {
        delta: false,
        ..cfg_on
    };
    let mut on = build_controller(topo, &workload, &roles, &cfg_on);
    let mut off = build_controller(topo, &workload, &roles, &cfg_off);

    let mut truth: Vec<BTreeMap<u32, Role>> = workload
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            g.members
                .iter()
                .zip(&roles[gi])
                .map(|(&vm, &r)| (vm, r))
                .collect()
        })
        .collect();

    for (bi, burst) in churn_bursts(&workload, cfg_on.events, cfg_on.seed, cfg_on.burst).enumerate()
    {
        for e in &burst {
            let g = &workload.groups[e.group as usize];
            let tenant = &workload.tenants[g.tenant as usize];
            let host = tenant.vms[e.vm as usize];
            if e.join {
                on.join(GroupId(e.group as u64), host, to_role(e.role));
                off.join(GroupId(e.group as u64), host, to_role(e.role));
                truth[e.group as usize].insert(e.vm, e.role);
            } else {
                let old_role = truth[e.group as usize]
                    .remove(&e.vm)
                    .expect("generator only emits leaves for members");
                on.leave(GroupId(e.group as u64), host, to_role(old_role));
                off.leave(GroupId(e.group as u64), host, to_role(old_role));
            }
        }
        states_identical(&on, &off)
            .unwrap_or_else(|e| panic!("burst {bi}: delta path diverged: {e}"));
    }
    assert!(on.churn_stats().delta_hits > 0);
    assert_eq!(off.churn_stats().delta_hits, 0);
}

/// A receiver join undone by its leave is a perfect round trip: the tree
/// and encoding return to their exact prior value, both legs ride the
/// delta path, and the epoch advances monotonically through both.
#[test]
fn join_then_leave_round_trips_exactly() {
    let topo = Clos::scaled_fabric(4, 6, 8); // 8 hosts per leaf
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    let gid = GroupId(7);
    // Members on leaves 0, 1, and 2; host 10 shares leaf 1 with hosts 8-9,
    // so its join and leave both keep the leaf set intact.
    let members = [0u32, 1, 8, 9, 16, 17];
    ctl.create_group(
        gid,
        Vni(3),
        Ipv4Addr::new(225, 4, 4, 4),
        members.iter().map(|&h| (HostId(h), MemberRole::Both)),
    );
    let state = ctl.group(gid).expect("created");
    let (tree0, enc0, epoch0) = (state.tree.clone(), state.enc.clone(), state.epoch);
    let hits0 = ctl.churn_stats().delta_hits;

    ctl.join(gid, HostId(10), MemberRole::Receiver);
    let state = ctl.group(gid).expect("exists");
    assert!(state.epoch > epoch0, "join must bump the epoch");
    assert_ne!(state.enc, enc0, "join must change the leaf section");
    let epoch1 = state.epoch;

    ctl.leave(gid, HostId(10), MemberRole::Receiver);
    let state = ctl.group(gid).expect("exists");
    assert!(state.epoch > epoch1, "leave must bump the epoch again");
    assert_eq!(state.tree, tree0, "tree must round-trip exactly");
    assert_eq!(state.enc, enc0, "encoding must round-trip exactly");
    assert_eq!(
        ctl.churn_stats().delta_hits,
        hits0 + 2,
        "both legs must ride the delta path"
    );
}

/// Batch admission threads must not leak into churn behavior: controllers
/// built with 1, 2, and 8 encoder threads are bit-identical before the
/// stream and stay bit-identical (same states, same churn counters) after
/// replaying it.
#[test]
fn thread_counts_do_not_change_the_outcome() {
    let (topo, workload, roles) = small_workload(0xde1c);
    let base = ChurnExpConfig {
        r: 12,
        header_budget: 325,
        threads: 1,
        events: 600,
        burst: 600,
        seed: 0x53,
        delta: true,
        verify_each_burst: false,
    };
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let cfg = ChurnExpConfig { threads, ..base };
        let mut ctl = build_controller(topo, &workload, &roles, &cfg);
        let run = replay(&workload, &roles, &cfg, &mut ctl);
        runs.push((threads, ctl, run));
    }
    let (_, ref ctl1, ref run1) = runs[0];
    for (threads, ctl, run) in &runs[1..] {
        states_identical(ctl1, ctl)
            .unwrap_or_else(|e| panic!("{threads}-thread build diverged: {e}"));
        assert_eq!(
            run1.stats, run.stats,
            "{threads}-thread churn counters diverged"
        );
    }
}
