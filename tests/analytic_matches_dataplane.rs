//! Cross-validation: the analytic traffic model in `elmo_sim::metrics`
//! (used to evaluate a million groups in seconds) must account exactly the
//! same bytes as real packets pushed through the `elmo_dataplane::Fabric`.
//! Any divergence means one of the two re-implementations of the forwarding
//! semantics is wrong.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use elmo::controller::srules::SRuleSpace;
use elmo::core::{encode_group, header_for_sender, EncoderConfig, HeaderLayout, SplitMix64};
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig};
use elmo::net::vxlan::Vni;
use elmo::sim::metrics;
use elmo::topology::{Clos, GroupTree, HostId, LeafId, PodId, UpstreamCover};

const GROUP: Ipv4Addr = Ipv4Addr::new(230, 0, 0, 9);
const TENANT_GROUP: Ipv4Addr = Ipv4Addr::new(225, 0, 0, 9);

fn measure_on_fabric(
    topo: &Clos,
    layout: &HeaderLayout,
    tree: &GroupTree,
    enc: &elmo::core::GroupEncoding,
    sender: HostId,
    payload: usize,
) -> u64 {
    let mut fabric = Fabric::new(*topo, SwitchConfig::default());
    for (leaf, bm) in &enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(GROUP, bm.clone())
            .expect("capacity");
    }
    for (pod, bm) in &enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), GROUP, bm.clone())
            .expect("capacity");
    }
    let header = header_for_sender(topo, layout, tree, enc, sender, &UpstreamCover::multipath());
    let mut hv = HypervisorSwitch::new(sender);
    hv.install_flow(
        Vni(5),
        TENANT_GROUP,
        SenderFlow::new(GROUP, Vni(5), &header, layout, vec![]),
    );
    let inner = vec![0u8; payload];
    let pkt = hv.send(Vni(5), TENANT_GROUP, &inner, layout).remove(0);
    fabric.inject(sender, pkt);
    fabric.stats.total_link_bytes()
}

fn random_members(rng: &mut SplitMix64, topo: &Clos, size: usize) -> BTreeSet<HostId> {
    (0..size)
        .map(|_| HostId(rng.below(topo.num_hosts() as u64) as u32))
        .collect()
}

fn check_agreement(r: usize, srules: bool, seed: u64, trials: usize) {
    let topo = Clos::paper_example();
    let layout = HeaderLayout::for_clos(&topo);
    let encoder = EncoderConfig {
        r,
        k_max: 2,
        h_spine_max: 2,
        h_leaf_max: 3, // tight, to exercise s-rules and defaults
        budget_bytes: 325,
        mode: elmo::core::RedundancyMode::Sum,
    };
    let mut rng = SplitMix64::new(seed);
    for trial in 0..trials {
        let size = rng.range_inclusive(2, 14);
        let members = random_members(&mut rng, &topo, size);
        let tree = GroupTree::new(&topo, members.iter().copied());
        if tree.size() < 2 {
            continue;
        }
        let mut space = if srules {
            SRuleSpace::unlimited(&topo)
        } else {
            SRuleSpace::new(&topo, 0, 0)
        };
        let enc = {
            let cell = std::cell::RefCell::new(&mut space);
            let mut sa = |p: PodId| cell.borrow_mut().alloc_pod(p);
            let mut la = |l: LeafId| cell.borrow_mut().alloc_leaf(l);
            encode_group(&topo, &tree, &encoder, &mut sa, &mut la)
        };
        let sender = *members.iter().next().expect("non-empty");
        for payload in [64u64, 700, 1500] {
            let analytic = metrics::elmo_bytes(&topo, &layout, &tree, &enc, sender, payload);
            let measured = measure_on_fabric(&topo, &layout, &tree, &enc, sender, payload as usize);
            assert_eq!(
                analytic, measured,
                "trial {trial}, r={r}, srules={srules}, payload={payload}, \
                 members={members:?}"
            );
        }
    }
}

#[test]
fn agreement_exact_encoding() {
    check_agreement(0, true, 101, 25);
}

#[test]
fn agreement_with_sharing() {
    check_agreement(4, true, 202, 25);
}

#[test]
fn agreement_with_default_rules() {
    // No s-rule capacity: overflow switches land on default p-rules, whose
    // spray the two models must count identically.
    check_agreement(0, false, 303, 25);
}

#[test]
fn agreement_with_sharing_and_defaults() {
    check_agreement(12, false, 404, 25);
}

/// The other baselines agree with first-principles recomputation on a
/// known group (guards against accidental formula drift).
#[test]
fn baseline_formulas_spot_check() {
    let topo = Clos::paper_example();
    let tree = GroupTree::new(&topo, [HostId(0), HostId(1), HostId(42)]);
    let pkt = metrics::OUTER + 1500;
    // Unicast from host 0: same-leaf copy (2 links) + cross-pod copy (6).
    assert_eq!(
        metrics::unicast_bytes(&topo, &tree, HostId(0), 1500),
        8 * pkt
    );
    // Overlay: sender proxies its own leaf (2 links to host 1) + one unicast
    // to pod 2's proxy (6 links), which has no further local members.
    assert_eq!(
        metrics::overlay_bytes(&topo, &tree, HostId(0), 1500),
        8 * pkt
    );
    // Ideal: sender link + 2 receiver links + up (leaf->spine, spine->core)
    // + down (core->spine, spine->leaf) = 7 links.
    assert_eq!(tree.ideal_link_count(&topo, HostId(0)), 7);
}
