//! Adversarial-input robustness: every parser in the packet path must
//! handle arbitrary bytes without panicking — a switch that panics on a
//! malformed packet is a denial-of-service vector (the paper's §7 security
//! discussion puts hypervisors in charge of dropping malicious packets,
//! but the network switches must survive whatever still reaches them).

// Requires the real `proptest` crate, which is not vendored in this
// offline workspace. Enable with `cargo test --features proptest` when
// the registry is reachable.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use elmo::core::{ElmoHeader, HeaderLayout};
use elmo::dataplane::{ElmoPacketRepr, HypervisorSwitch, NetworkSwitch, SwitchConfig};
use elmo::topology::{Clos, CoreId, HostId, LeafId, SpineId};

fn layout() -> HeaderLayout {
    HeaderLayout::for_clos(&Clos::paper_example())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw bytes into the header decoder: error or success, never a panic,
    /// and success must re-encode to a prefix-consistent length.
    #[test]
    fn header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let layout = layout();
        if let Ok((header, used)) = ElmoHeader::decode(&bytes, &layout) {
            prop_assert!(used <= bytes.len());
            prop_assert_eq!(header.byte_len(&layout), used);
        }
    }

    /// Raw bytes into the full packet parser.
    #[test]
    fn packet_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = ElmoPacketRepr::parse(&bytes, &layout());
    }

    /// Raw bytes into every switch role, on both upstream and downstream
    /// ports: the switch may drop (and count) but must not panic, and must
    /// never emit copies for garbage.
    #[test]
    fn switches_survive_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
        ingress in 0usize..4,
    ) {
        let topo = Clos::paper_example();
        let layout = layout();
        let mut leaf = NetworkSwitch::new_leaf(topo, LeafId(0), SwitchConfig::default());
        let mut spine = NetworkSwitch::new_spine(topo, SpineId(0), SwitchConfig::default());
        let mut core = NetworkSwitch::new_core(topo, CoreId(0), SwitchConfig::default());
        prop_assert!(leaf.process(ingress, &bytes, &layout).is_empty());
        prop_assert!(leaf.process(8 + ingress % 2, &bytes, &layout).is_empty());
        prop_assert!(spine.process(ingress % 2, &bytes, &layout).is_empty());
        prop_assert!(spine.process(2 + ingress % 2, &bytes, &layout).is_empty());
        prop_assert!(core.process(ingress, &bytes, &layout).is_empty());
    }

    /// Raw bytes into the hypervisor receive path and the IGMP interceptor.
    #[test]
    fn hypervisor_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let layout = layout();
        let mut hv = HypervisorSwitch::new(HostId(5));
        prop_assert!(hv.receive(&bytes, &layout).is_empty());
        let _ = hv.intercept_igmp(elmo::dataplane::VmSlot(0), &bytes);
    }

    /// Bit-flip corruption of a valid packet: the data plane must either
    /// drop it (checksum/structure) or deliver without panicking — and a
    /// flipped IPv4 header byte must always be caught by the checksum.
    #[test]
    fn bit_flips_are_contained(flip_at in 14usize..34, flip_bit in 0u8..8) {
        let topo = Clos::paper_example();
        let layout = HeaderLayout::for_clos(&topo);
        // A real packet from the quickstart group.
        let mut header = ElmoHeader::empty();
        header.u_leaf = Some(elmo::core::UpstreamRule {
            down: elmo::core::PortBitmap::from_ports(layout.leaf_down_ports, [1]),
            multipath: true,
            up: elmo::core::PortBitmap::new(layout.leaf_up_ports),
        });
        header.core = Some(elmo::core::PortBitmap::from_ports(layout.core_ports, [2]));
        let repr = ElmoPacketRepr {
            src_mac: elmo::net::ethernet::MacAddr::for_host(0),
            dst_mac: elmo::net::ethernet::MacAddr::from_ipv4_multicast(
                "239.0.0.5".parse().expect("addr"),
            ),
            src_ip: "10.0.0.7".parse().expect("addr"),
            group_ip: "239.0.0.5".parse().expect("addr"),
            flow_entropy: 7,
            vni: elmo::net::vxlan::Vni(3),
            elmo: Some(header),
        };
        let mut pkt = Vec::new();
        repr.emit(&layout, b"payload", &mut pkt);
        // Flip one bit inside the IPv4 header.
        pkt[flip_at] ^= 1 << flip_bit;
        let mut leaf = NetworkSwitch::new_leaf(topo, LeafId(0), SwitchConfig::default());
        let out = leaf.process(0, &pkt, &layout);
        // A corrupted IPv4 header must be dropped by the checksum — unless
        // the flip hit the checksum-neutral... there is none: any single
        // bit flip breaks the ones-complement sum.
        prop_assert!(out.is_empty());
        prop_assert_eq!(leaf.stats.dropped_parse, 1);
    }
}
