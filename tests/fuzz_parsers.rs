//! Adversarial-input robustness: every parser in the packet path must
//! handle arbitrary bytes without panicking — a switch that panics on a
//! malformed packet is a denial-of-service vector (the paper's §7 security
//! discussion puts hypervisors in charge of dropping malicious packets,
//! but the network switches must survive whatever still reaches them).
//!
//! Two tiers:
//! - an always-on deterministic suite (`deterministic` module below) that
//!   drives seeded pseudo-random bytes and structured corruptions of valid
//!   packets through `ElmoHeader::decode`, `ElmoPacketRepr::parse`, and
//!   `FlightPacket::parse`, asserting typed errors rather than panics;
//! - a property-based suite gated behind `--features proptest` (the crate
//!   is not vendored in this offline workspace).

use elmo::core::{ElmoHeader, HeaderLayout};
use elmo::dataplane::{ElmoPacketRepr, FlightPacket};
use elmo::topology::Clos;

fn layout() -> HeaderLayout {
    HeaderLayout::for_clos(&Clos::paper_example())
}

/// SplitMix64: tiny, seedable, good-enough byte source for deterministic
/// fuzzing without an external crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A valid multicast packet with a two-section Elmo header, as the
/// quickstart's sender hypervisor would emit it.
fn valid_packet(layout: &HeaderLayout) -> Vec<u8> {
    let mut header = ElmoHeader::empty();
    header.u_leaf = Some(elmo::core::UpstreamRule {
        down: elmo::core::PortBitmap::from_ports(layout.leaf_down_ports, [1]),
        multipath: true,
        up: elmo::core::PortBitmap::new(layout.leaf_up_ports),
    });
    header.core = Some(elmo::core::PortBitmap::from_ports(layout.core_ports, [2]));
    let repr = ElmoPacketRepr {
        src_mac: elmo::net::ethernet::MacAddr::for_host(0),
        dst_mac: elmo::net::ethernet::MacAddr::from_ipv4_multicast(
            "239.0.0.5".parse().expect("addr"),
        ),
        src_ip: "10.0.0.7".parse().expect("addr"),
        group_ip: "239.0.0.5".parse().expect("addr"),
        flow_entropy: 7,
        vni: elmo::net::vxlan::Vni(3),
        elmo: Some(header),
    };
    let mut pkt = Vec::new();
    repr.emit(layout, b"fuzz payload", &mut pkt);
    pkt
}

/// Random bytes of every length up to 160 into all three parsers: a typed
/// `Err` or a self-consistent `Ok`, never a panic. Decode round-trip
/// lengths must stay inside the input.
#[test]
fn random_bytes_yield_typed_errors() {
    let layout = layout();
    let mut rng = SplitMix64(0xe1_40_f0_22);
    let mut ok_headers = 0usize;
    for len in 0..160 {
        for _rep in 0..8 {
            let mut bytes = vec![0u8; len];
            rng.fill(&mut bytes);
            if let Ok((header, used)) = ElmoHeader::decode(&bytes, &layout) {
                assert!(used <= bytes.len());
                assert_eq!(header.byte_len(&layout), used);
                ok_headers += 1;
            }
            let repr = ElmoPacketRepr::parse(&bytes, &layout);
            let flight = FlightPacket::parse(&bytes, &layout);
            // The two parsers share one grammar: they must agree on
            // accept/reject for identical input.
            assert_eq!(repr.is_ok(), flight.is_ok(), "parsers diverge at len {len}");
            if let (Ok((r, inner_off)), Ok(f)) = (repr, flight) {
                assert!(inner_off <= bytes.len());
                assert_eq!(r.vni, f.vni);
                assert_eq!(&bytes[inner_off..], f.payload.as_ref());
            }
        }
    }
    // The decoder accepting some random blobs is fine (short headers have
    // little redundancy); the assertions above still hold for each.
    let _ = ok_headers;
}

/// Every truncation of a valid packet: the parsers must reject the prefix
/// with a typed error (no prefix of a longer packet is itself valid, since
/// the IPv4 total-length field covers the full datagram).
#[test]
fn truncations_of_valid_packet_are_rejected() {
    let layout = layout();
    let pkt = valid_packet(&layout);
    for len in 0..pkt.len() {
        let prefix = &pkt[..len];
        assert!(
            ElmoPacketRepr::parse(prefix, &layout).is_err(),
            "truncation to {len} bytes parsed"
        );
        assert!(FlightPacket::parse(prefix, &layout).is_err());
    }
    let (full, _) = ElmoPacketRepr::parse(&pkt, &layout).expect("untruncated packet parses");
    assert!(full.elmo.is_some(), "fixture carries an Elmo header");
}

/// Every single-byte corruption of a valid packet, all eight bit
/// positions: parse may succeed (payload/entropy bits carry no
/// redundancy) or fail typed, but must never panic — and a successful
/// parse must re-emit without panicking either.
#[test]
fn single_bit_flips_never_panic() {
    let layout = layout();
    let pkt = valid_packet(&layout);
    let mut scratch = Vec::new();
    for at in 0..pkt.len() {
        for bit in 0..8 {
            let mut corrupted = pkt.clone();
            corrupted[at] ^= 1 << bit;
            if let Ok((repr, inner_off)) = ElmoPacketRepr::parse(&corrupted, &layout) {
                repr.emit(&layout, &corrupted[inner_off..], &mut scratch);
            }
            let _ = FlightPacket::parse(&corrupted, &layout);
        }
    }
}

/// `FlightBatch::push_wire` must share `FlightPacket::parse`'s grammar
/// exactly over adversarial inputs — truncations, single-bit flips, and
/// seeded random buffers. Accept/reject parity (same typed error) on
/// every input, a rejected input leaves the batch untouched, and every
/// accepted packet's precomputed wire-length rows agree with the
/// per-state lengths the scalar path computes on demand.
#[test]
fn push_wire_parity_with_scalar_parse() {
    let layout = layout();
    let pkt = valid_packet(&layout);
    let mut batch = elmo::dataplane::FlightBatch::new();
    let check = |bytes: &[u8], batch: &mut elmo::dataplane::FlightBatch| {
        let before = batch.len();
        match (
            batch.push_wire(bytes, &layout),
            FlightPacket::parse(bytes, &layout),
        ) {
            (Ok(()), Ok(parsed)) => {
                assert_eq!(
                    batch.len(),
                    before + 1,
                    "push_wire accepted without pushing"
                );
                let i = batch.len() - 1;
                for depth in elmo::core::pop::NONE..=elmo::core::pop::D_SPINE {
                    let mut copy = parsed.clone();
                    copy.popped = depth;
                    assert_eq!(
                        batch.wire_len(i, depth),
                        copy.wire_len(&layout),
                        "wire-length row diverged at depth {depth}"
                    );
                }
                // u8::MAX is the engine's host-stripped state: the row must
                // equal the length of the fully materialized host copy.
                assert_eq!(
                    batch.wire_len(i, u8::MAX),
                    parsed.to_host_bytes(&layout).len(),
                    "host-stripped wire-length row diverged"
                );
            }
            (Err(got), Err(want)) => {
                assert_eq!(got, want, "push_wire and scalar parse errors differ");
                assert_eq!(batch.len(), before, "rejected input mutated the batch");
            }
            (got, want) => panic!(
                "accept/reject divergence: push_wire={got:?}, parse={}",
                if want.is_ok() { "Ok" } else { "Err" }
            ),
        }
    };
    for len in 0..=pkt.len() {
        check(&pkt[..len], &mut batch);
    }
    for at in 0..pkt.len() {
        for bit in 0..8 {
            let mut corrupted = pkt.clone();
            corrupted[at] ^= 1 << bit;
            check(&corrupted, &mut batch);
        }
    }
    let mut rng = SplitMix64(0xf1e7_ba7c);
    let mut buf = [0u8; 128];
    for len in [0usize, 8, 40, 64, 96, 128] {
        for _ in 0..64 {
            rng.fill(&mut buf[..len]);
            check(&buf[..len], &mut batch);
        }
    }
    assert!(
        !batch.is_empty(),
        "the valid fixture must have been accepted"
    );
}

/// Corruptions aimed at the Elmo header region specifically: random bytes
/// overwrite the section area so the bitmap-count and switch-count fields
/// take arbitrary values; the decoder must bound-check every claimed
/// length against the buffer instead of trusting it.
#[test]
fn header_region_corruption_is_bounded() {
    let layout = layout();
    let pkt = valid_packet(&layout);
    let elmo_start = ElmoPacketRepr::OUTER_LEN;
    let mut rng = SplitMix64(0x5eed);
    for _rep in 0..4096 {
        let mut corrupted = pkt.clone();
        let span = (rng.next_u64() as usize % (corrupted.len() - elmo_start)).max(1);
        rng.fill(&mut corrupted[elmo_start..elmo_start + span]);
        if let Ok((header, used)) = ElmoHeader::decode(&corrupted[elmo_start..], &layout) {
            assert!(used <= corrupted.len() - elmo_start);
            assert_eq!(header.byte_len(&layout), used);
        }
        let _ = ElmoPacketRepr::parse(&corrupted, &layout);
        let _ = FlightPacket::parse(&corrupted, &layout);
    }
}

/// The observability JSON parsers get the same deterministic treatment as
/// the packet parsers: `Snapshot::from_json`, `CopyTree::from_json`, and
/// `TimelineWindow::from_json` all accept attacker-supplied files (CI
/// artifacts, `--report-out` documents, `timeline.jsonl` lines), so random
/// bytes, truncations, and bit flips must yield typed errors — and valid
/// documents must round-trip losslessly.
mod obs_documents {
    use super::SplitMix64;
    use elmo::obs::{CopyTree, Snapshot, TimelineWindow, TraceEvent, HOST_NODE_BIT, TRACE_ROOT};

    fn valid_tree() -> CopyTree {
        let events = [
            TraceEvent {
                pkt: 0,
                parent: TRACE_ROOT,
                child: 0,
                state: 0,
            },
            TraceEvent {
                pkt: 0,
                parent: 0,
                child: 6,
                state: 1,
            },
            TraceEvent {
                pkt: 0,
                parent: 6,
                child: HOST_NODE_BIT | 42,
                state: u8::MAX,
            },
        ];
        let mut tree = CopyTree::build(0, &events, |n| format!("sw:{n}"));
        tree.annotate(|n| {
            if n.node & HOST_NODE_BIT != 0 {
                ("deliver".into(), String::new())
            } else {
                ("p-rule".into(), format!("g1/p{}", n.state))
            }
        });
        tree
    }

    fn valid_window() -> TimelineWindow {
        let mut w = TimelineWindow {
            index: 7,
            ..TimelineWindow::default()
        };
        w.counters.insert("dataplane.prule_hits".into(), 64);
        w.counters.insert("fabric.packets_on_links".into(), 112);
        w.gauges.insert("timeline.window.deliveries".into(), 40);
        w
    }

    /// Random bytes into all three document parsers: typed errors or a
    /// self-consistent success, never a panic.
    #[test]
    fn random_bytes_yield_typed_errors() {
        let mut rng = SplitMix64(0x0b5_d0c5);
        for len in 0..256 {
            for _rep in 0..4 {
                let mut bytes = vec![0u8; len];
                rng.fill(&mut bytes);
                let text = String::from_utf8_lossy(&bytes);
                let _ = Snapshot::from_json(&text);
                let _ = CopyTree::from_json(&text);
                let _ = TimelineWindow::from_json(&text);
            }
        }
    }

    /// Valid documents survive a parse → serialize → parse cycle without
    /// losing anything.
    #[test]
    fn valid_documents_round_trip_losslessly() {
        let tree = valid_tree();
        let back = CopyTree::from_json(&tree.to_json()).expect("tree parses");
        assert_eq!(back, tree);
        assert_eq!(back.to_json(), tree.to_json());

        let window = valid_window();
        let back = TimelineWindow::from_json(&window.to_json()).expect("window parses");
        assert_eq!(back, window);
        assert_eq!(back.to_json(), window.to_json());

        let snap = {
            // A live snapshot is process-global; go through JSON so the
            // fixture is stable regardless of what other tests recorded.
            elmo::obs::counter("fuzz.obs_documents.probe").add(3);
            elmo::obs::snapshot()
        };
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("snapshot parses");
        assert_eq!(back.counter("fuzz.obs_documents.probe"), Some(3));
        assert_eq!(back.to_json(), json);
    }

    /// Every truncation of each valid document is rejected with a typed
    /// error — braces never balance early, since the last non-whitespace
    /// byte closes the root object.
    #[test]
    fn truncations_are_rejected() {
        let tree_json = valid_tree().to_json();
        for len in 0..tree_json.trim_end().len() {
            assert!(
                CopyTree::from_json(&tree_json[..len]).is_err(),
                "tree truncation to {len} bytes parsed"
            );
        }
        let window_json = valid_window().to_json();
        for len in 0..window_json.trim_end().len() {
            assert!(TimelineWindow::from_json(&window_json[..len]).is_err());
        }
    }

    /// Single-byte corruptions: parse may succeed (string content carries
    /// no redundancy) or fail typed, but never panic — and a successful
    /// parse must re-serialize without panicking.
    #[test]
    fn single_byte_corruptions_never_panic() {
        let tree_json = valid_tree().to_json();
        let window_json = valid_window().to_json();
        let mut rng = SplitMix64(0xf1_1b);
        for (doc, which) in [(&tree_json, 0u8), (&window_json, 1)] {
            for at in 0..doc.len() {
                let mut corrupted = doc.clone().into_bytes();
                corrupted[at] ^= 1 << (rng.next_u64() % 8);
                let text = String::from_utf8_lossy(&corrupted);
                match which {
                    0 => {
                        if let Ok(t) = CopyTree::from_json(&text) {
                            let _ = t.to_json();
                        }
                    }
                    _ => {
                        if let Ok(w) = TimelineWindow::from_json(&text) {
                            let _ = w.to_json();
                        }
                    }
                }
            }
        }
    }
}

#[cfg(feature = "proptest")]
mod property_based {
    use proptest::prelude::*;

    use super::layout;
    use elmo::core::{ElmoHeader, HeaderLayout};
    use elmo::dataplane::{ElmoPacketRepr, HypervisorSwitch, NetworkSwitch, SwitchConfig};
    use elmo::topology::{Clos, CoreId, HostId, LeafId, SpineId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Raw bytes into the header decoder: error or success, never a panic,
        /// and success must re-encode to a prefix-consistent length.
        #[test]
        fn header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let layout = layout();
            if let Ok((header, used)) = ElmoHeader::decode(&bytes, &layout) {
                prop_assert!(used <= bytes.len());
                prop_assert_eq!(header.byte_len(&layout), used);
            }
        }

        /// Raw bytes into the full packet parser.
        #[test]
        fn packet_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = ElmoPacketRepr::parse(&bytes, &layout());
        }

        /// Raw bytes into every switch role, on both upstream and downstream
        /// ports: the switch may drop (and count) but must not panic, and must
        /// never emit copies for garbage.
        #[test]
        fn switches_survive_garbage(
            bytes in proptest::collection::vec(any::<u8>(), 0..96),
            ingress in 0usize..4,
        ) {
            let topo = Clos::paper_example();
            let layout = layout();
            let mut leaf = NetworkSwitch::new_leaf(topo, LeafId(0), SwitchConfig::default());
            let mut spine = NetworkSwitch::new_spine(topo, SpineId(0), SwitchConfig::default());
            let mut core = NetworkSwitch::new_core(topo, CoreId(0), SwitchConfig::default());
            prop_assert!(leaf.process(ingress, &bytes, &layout).is_empty());
            prop_assert!(leaf.process(8 + ingress % 2, &bytes, &layout).is_empty());
            prop_assert!(spine.process(ingress % 2, &bytes, &layout).is_empty());
            prop_assert!(spine.process(2 + ingress % 2, &bytes, &layout).is_empty());
            prop_assert!(core.process(ingress, &bytes, &layout).is_empty());
        }

        /// Raw bytes into the hypervisor receive path and the IGMP interceptor.
        #[test]
        fn hypervisor_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            let layout = layout();
            let mut hv = HypervisorSwitch::new(HostId(5));
            prop_assert!(hv.receive(&bytes, &layout).is_empty());
            let _ = hv.intercept_igmp(elmo::dataplane::VmSlot(0), &bytes);
        }

        /// Bit-flip corruption of a valid packet: the data plane must either
        /// drop it (checksum/structure) or deliver without panicking — and a
        /// flipped IPv4 header byte must always be caught by the checksum.
        #[test]
        fn bit_flips_are_contained(flip_at in 14usize..34, flip_bit in 0u8..8) {
            let topo = Clos::paper_example();
            let layout = HeaderLayout::for_clos(&topo);
            let mut pkt = super::valid_packet(&layout);
            // Flip one bit inside the IPv4 header.
            pkt[flip_at] ^= 1 << flip_bit;
            let mut leaf = NetworkSwitch::new_leaf(topo, LeafId(0), SwitchConfig::default());
            let out = leaf.process(0, &pkt, &layout);
            // A corrupted IPv4 header must be dropped by the checksum — unless
            // the flip hit the checksum-neutral... there is none: any single
            // bit flip breaks the ones-complement sum.
            prop_assert!(out.is_empty());
            prop_assert_eq!(leaf.stats.dropped_parse, 1);
        }
    }
}
