//! End-to-end checks of the elmo-obs wiring: the global metric counters
//! must mirror the fabric's own per-instance accounting exactly, and a
//! snapshot written to disk must round-trip through the JSON layer and
//! satisfy the declared-metric contract CI enforces.

use std::net::Ipv4Addr;
use std::sync::Mutex;

use elmo::controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig, VmSlot};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, HostId, LeafId, PodId};

/// The obs registry is process-global; serialize the tests in this binary.
static REGISTRY: Mutex<()> = Mutex::new(());

#[test]
fn fabric_globals_mirror_local_stats_exactly() {
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    elmo::obs::reset();

    // One cross-pod group on the paper-example fabric, driven end to end.
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    let gid = GroupId(1);
    let vni = Vni(7);
    let tenant_addr = Ipv4Addr::new(225, 1, 2, 3);
    let members = [0u32, 1, 42, 48, 57];
    ctl.create_group(
        gid,
        vni,
        tenant_addr,
        members.iter().map(|&h| (HostId(h), MemberRole::Both)),
    );
    let state = ctl.group(gid).expect("group");
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .expect("leaf capacity");
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .expect("spine capacity");
    }
    let sender = HostId(members[0]);
    let header = ctl.header_for(gid, sender).expect("header");
    let mut hv = HypervisorSwitch::new(sender);
    hv.install_flow(
        vni,
        tenant_addr,
        SenderFlow::new(state.outer_addr, vni, &header, ctl.layout(), vec![]),
    );
    let mut rx = HypervisorSwitch::new(HostId(members[1]));
    rx.subscribe(state.outer_addr, VmSlot(0));
    let mut delivered = 0usize;
    for pkt in hv.send(vni, tenant_addr, b"obs cross-check", ctl.layout()) {
        for (host, bytes) in fabric.inject(sender, pkt) {
            if host == HostId(members[1]) {
                delivered += rx.receive(&bytes, ctl.layout()).len();
            }
        }
    }
    assert_eq!(delivered, 1, "scenario must actually deliver");

    // The global counters must agree with the fabric's own stats struct —
    // they are incremented at the same sites, so any drift means a missed
    // or doubled recording call.
    let snap = elmo::obs::snapshot();
    let s = &fabric.stats;
    for (name, local) in [
        ("fabric.host_to_leaf_bytes", s.host_to_leaf_bytes),
        ("fabric.leaf_to_host_bytes", s.leaf_to_host_bytes),
        ("fabric.leaf_to_spine_bytes", s.leaf_to_spine_bytes),
        ("fabric.spine_to_leaf_bytes", s.spine_to_leaf_bytes),
        ("fabric.spine_to_core_bytes", s.spine_to_core_bytes),
        ("fabric.core_to_spine_bytes", s.core_to_spine_bytes),
        ("fabric.packets_on_links", s.packets_on_links),
    ] {
        assert_eq!(snap.counter(name), Some(local), "{name}");
    }
    // A cross-pod group exercises p-rules (or s-rules) and header popping.
    let prule = snap.counter("dataplane.prule_hits").unwrap_or(0);
    let srule = snap.counter("dataplane.srule_hits").unwrap_or(0);
    assert!(prule + srule > 0, "no switch match source recorded");
    assert!(snap.counter("dataplane.header_pops").unwrap_or(0) > 0);
    assert!(snap.counter("controller.groups_created").unwrap_or(0) >= 1);
}

#[test]
fn written_snapshot_round_trips_and_passes_contract() {
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join("elmo_obs_ws_snapshot.json");
    let path = path.to_str().unwrap().to_string();
    elmo::sim::obs::write_snapshot(&path).expect("snapshot written");
    let json = std::fs::read_to_string(&path).expect("readable");
    assert!(
        elmo::sim::obs::check_snapshot(&json).is_empty(),
        "written snapshot violates the declared-metric contract"
    );
    let snap = elmo::obs::Snapshot::from_json(&json).expect("parses");
    assert_eq!(
        snap.to_json(),
        json,
        "snapshot JSON must round-trip bytewise"
    );
    let _ = std::fs::remove_file(&path);
}
