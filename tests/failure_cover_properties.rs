//! Property tests for failure handling: whenever the greedy set cover
//! reports `complete`, the chosen (spine, core-port) combinations really
//! reach every member pod and local leaf through alive switches only; and
//! `complete = false` only when no cover exists at all.

// Requires the real `proptest` crate, which is not vendored in this
// offline workspace. Enable with `cargo test --features proptest` when
// the registry is reachable.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use elmo::topology::{
    Clos, CoreId, FailureState, GroupTree, HostId, PodId, SpineId, UpstreamCover,
};

fn check_cover(topo: &Clos, failures: &FailureState, tree: &GroupTree, sender_pod: PodId) {
    let cover = UpstreamCover::compute(topo, failures, tree, sender_pod, true);
    let remote: Vec<PodId> = tree.pods().filter(|&p| p != sender_pod).collect();

    // Which remote pods do the chosen ports actually reach?
    let reaches = |pod: PodId| -> bool {
        cover.leaf_up_ports.iter().any(|&sl| {
            let s = topo.spine_in_pod(sender_pod, sl);
            if !failures.spine_alive(s) {
                return false;
            }
            let cores: Vec<CoreId> = topo.cores_of_spine(s).collect();
            cover
                .spine_up_ports
                .iter()
                .any(|&pl| failures.core_reaches_pod(topo, cores[pl], pod))
        })
    };

    if cover.complete {
        // Every chosen spine must be alive.
        for &sl in &cover.leaf_up_ports {
            assert!(failures.spine_alive(topo.spine_in_pod(sender_pod, sl)));
        }
        // Every remote pod covered.
        for &p in &remote {
            assert!(reaches(p), "complete cover misses pod {p}");
        }
        // Local leaves need at least one alive spine when anything exists to
        // reach beyond the sender's own leaf.
        if !remote.is_empty() || tree.num_leaves() > 0 {
            assert!(!cover.leaf_up_ports.is_empty() || remote.is_empty());
        }
    } else {
        // Incompleteness must be genuine: brute-force all (spine, core)
        // pairs and confirm some pod is unreachable.
        let all_reachable = remote.iter().all(|&p| {
            topo.spines_in_pod(sender_pod)
                .any(|s| failures.spine_reaches_pod(topo, s, p))
        }) && topo
            .spines_in_pod(sender_pod)
            .any(|s| failures.spine_alive(s));
        assert!(!all_reachable, "cover said incomplete but a path exists");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn greedy_cover_is_sound(
        member_seeds in proptest::collection::btree_set(0u32..64, 2..12),
        dead_spines in proptest::collection::btree_set(0u32..8, 0..5),
        dead_cores in proptest::collection::btree_set(0u32..4, 0..3),
        sender_pod in 0u32..4,
    ) {
        let topo = Clos::paper_example();
        let mut failures = FailureState::none();
        for s in dead_spines {
            failures.fail_spine(SpineId(s));
        }
        for c in dead_cores {
            failures.fail_core(CoreId(c));
        }
        let tree = GroupTree::new(&topo, member_seeds.into_iter().map(HostId));
        check_cover(&topo, &failures, &tree, PodId(sender_pod));
    }

    #[test]
    fn healthy_network_cover_is_minimal(
        member_seeds in proptest::collection::btree_set(0u32..64, 2..12),
        sender_pod in 0u32..4,
    ) {
        let topo = Clos::paper_example();
        let tree = GroupTree::new(&topo, member_seeds.into_iter().map(HostId));
        let cover = UpstreamCover::compute(
            &topo, &FailureState::none(), &tree, PodId(sender_pod), true,
        );
        prop_assert!(cover.complete);
        // Without failures one spine and at most one core port suffice.
        prop_assert!(cover.leaf_up_ports.len() <= 1);
        prop_assert!(cover.spine_up_ports.len() <= 1);
    }
}
