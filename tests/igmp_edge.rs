//! Tenant-facing IGMP edge, end to end: unmodified VMs signal membership
//! with standard IGMPv2; the hypervisor intercepts it at the virtual edge
//! and drives the controller API; no IGMP ever touches the fabric, and
//! data delivery follows the membership.

use std::net::Ipv4Addr;

use elmo::controller::{Controller, ControllerConfig, MemberRole};
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig, VmSlot};
use elmo::net::ethernet::{EtherType, Frame, FrameRepr, MacAddr};
use elmo::net::igmp::{IgmpPacket, IgmpRepr, MESSAGE_LEN};
use elmo::net::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, HostId, LeafId, PodId};

fn igmp_frame(repr: IgmpRepr) -> Vec<u8> {
    let mut buf = vec![0u8; 14 + 20 + MESSAGE_LEN];
    let mut eth = Frame::new_unchecked(&mut buf[..]);
    FrameRepr {
        dst: MacAddr::from_ipv4_multicast(repr.group),
        src: MacAddr::for_host(1),
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut eth);
    let mut ip = Ipv4Packet::new_unchecked(&mut buf[14..]);
    Ipv4Repr {
        src: Ipv4Addr::new(192, 168, 1, 1),
        dst: repr.group,
        protocol: Protocol::Igmp,
        ttl: 1,
        payload_len: MESSAGE_LEN,
    }
    .emit(&mut ip);
    let mut igmp = IgmpPacket::new_unchecked(&mut buf[34..]);
    repr.emit(&mut igmp);
    buf
}

#[test]
fn igmp_joins_create_and_populate_groups() {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let vni = Vni(31);
    let group = Ipv4Addr::new(225, 31, 0, 1);

    // Three VMs on different hosts join by sending plain IGMP reports.
    let receivers = [HostId(9), HostId(42), HostId(57)];
    for &h in &receivers {
        let mut hv = HypervisorSwitch::new(h);
        let signal = hv
            .intercept_igmp(VmSlot(0), &igmp_frame(IgmpRepr::join(group)))
            .expect("join intercepted");
        let (gid, _) = ctl.handle_membership_signal(vni, &signal, MemberRole::Receiver);
        assert!(gid.is_some());
    }
    let gid = ctl.group_id_for(vni, group).expect("group auto-created");
    assert_eq!(ctl.group(gid).expect("state").tree.size(), 3);

    // A sender joins (send-only role) and transmits.
    let sender = HostId(0);
    let mut sender_hv = HypervisorSwitch::new(sender);
    let signal = sender_hv
        .intercept_igmp(VmSlot(1), &igmp_frame(IgmpRepr::join(group)))
        .expect("sender join");
    ctl.handle_membership_signal(vni, &signal, MemberRole::Sender);

    let state = ctl.group(gid).expect("state");
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .unwrap();
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .unwrap();
    }
    let header = ctl.header_for(gid, sender).expect("header");
    sender_hv.install_flow(
        vni,
        group,
        SenderFlow::new(state.outer_addr, vni, &header, ctl.layout(), vec![]),
    );
    let pkt = sender_hv
        .send(vni, group, b"igmp-made group", ctl.layout())
        .remove(0);
    let mut got: Vec<HostId> = fabric
        .inject(sender, pkt)
        .into_iter()
        .map(|(h, _)| h)
        .collect();
    got.sort_unstable();
    assert_eq!(got, receivers);

    // Leaves shrink the group; the last leave deletes it.
    for &h in &receivers {
        let mut hv = HypervisorSwitch::new(h);
        let signal = hv
            .intercept_igmp(VmSlot(0), &igmp_frame(IgmpRepr::leave(group)))
            .expect("leave intercepted");
        ctl.handle_membership_signal(vni, &signal, MemberRole::Receiver);
    }
    let mut hv = HypervisorSwitch::new(sender);
    let signal = hv
        .intercept_igmp(VmSlot(1), &igmp_frame(IgmpRepr::leave(group)))
        .expect("sender leave");
    ctl.handle_membership_signal(vni, &signal, MemberRole::Sender);
    assert!(
        ctl.group_id_for(vni, group).is_none(),
        "empty group torn down"
    );
}

#[test]
fn igmp_is_isolated_per_vni() {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let group = Ipv4Addr::new(225, 5, 5, 5);
    // The same tenant-side address joined under two different VNIs must
    // produce two independent groups.
    for (vni, host) in [(Vni(1), HostId(3)), (Vni(2), HostId(4))] {
        let mut hv = HypervisorSwitch::new(host);
        let signal = hv
            .intercept_igmp(VmSlot(0), &igmp_frame(IgmpRepr::join(group)))
            .expect("join");
        ctl.handle_membership_signal(vni, &signal, MemberRole::Both);
    }
    let a = ctl.group_id_for(Vni(1), group).expect("vni 1 group");
    let b = ctl.group_id_for(Vni(2), group).expect("vni 2 group");
    assert_ne!(a, b);
    assert_ne!(
        ctl.group(a).expect("a").outer_addr,
        ctl.group(b).expect("b").outer_addr
    );
}

#[test]
fn leave_for_unknown_group_is_noop() {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let mut hv = HypervisorSwitch::new(HostId(1));
    let signal = hv
        .intercept_igmp(
            VmSlot(0),
            &igmp_frame(IgmpRepr::leave(Ipv4Addr::new(225, 0, 0, 99))),
        )
        .expect("leave intercepted");
    let (gid, updates) = ctl.handle_membership_signal(Vni(1), &signal, MemberRole::Receiver);
    assert!(gid.is_none());
    assert!(updates.hypervisors.is_empty());
    assert_eq!(ctl.group_count(), 0);
}
