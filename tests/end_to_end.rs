//! End-to-end integration: controller-computed rules drive real packets
//! through the full data plane, across many randomized groups.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use elmo::controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo::core::SplitMix64;
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig, VmSlot};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, HostId, LeafId, PodId};

/// Install a group's switch rules into a fabric and deliver one packet from
/// `sender`, returning the receiving hosts (deduplicated).
fn deliver(
    ctl: &Controller,
    fabric: &mut Fabric,
    gid: GroupId,
    sender: HostId,
) -> BTreeSet<HostId> {
    let layout = *ctl.layout();
    let state = ctl.group(gid).expect("group exists");
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .expect("leaf capacity");
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .expect("spine capacity");
    }
    let header = ctl.header_for(gid, sender).expect("sender header");
    let mut hv = HypervisorSwitch::new(sender);
    hv.install_flow(
        state.vni,
        state.tenant_addr,
        SenderFlow::new(state.outer_addr, state.vni, &header, &layout, vec![]),
    );
    let pkt = hv
        .send(state.vni, state.tenant_addr, b"integration", &layout)
        .remove(0);
    fabric
        .inject(sender, pkt)
        .into_iter()
        .filter_map(|(h, bytes)| {
            let mut rx = HypervisorSwitch::new(h);
            rx.subscribe(state.outer_addr, VmSlot(0));
            (!rx.receive(&bytes, &layout).is_empty()).then_some(h)
        })
        .collect()
}

/// Random groups, exact encoding (R = 0, plentiful s-rules): every member
/// (and nothing else) receives every sender's packet.
#[test]
fn exact_encodings_deliver_precisely() {
    let topo = Clos::paper_example();
    let mut rng = SplitMix64::new(0xE2E);
    for trial in 0..30 {
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
        let size = rng.range_inclusive(2, 12);
        let members: BTreeSet<HostId> = (0..size)
            .map(|_| HostId(rng.below(topo.num_hosts() as u64) as u32))
            .collect();
        let gid = GroupId(trial);
        ctl.create_group(
            gid,
            Vni(1),
            Ipv4Addr::new(225, 0, 0, trial as u8 + 1),
            members.iter().map(|&h| (h, MemberRole::Both)),
        );
        let sender = *members.iter().next().expect("non-empty");
        let mut fabric = Fabric::new(topo, SwitchConfig::default());
        let got = deliver(&ctl, &mut fabric, gid, sender);
        let expected: BTreeSet<HostId> = members.iter().copied().filter(|&h| h != sender).collect();
        assert_eq!(got, expected, "trial {trial}, sender {sender}");
    }
}

/// With sharing enabled (R > 0), delivery must be a superset of the members
/// (spurious copies are allowed; misses are not), and the spurious count is
/// bounded by R per shared rule.
#[test]
fn shared_encodings_never_miss_members() {
    let topo = Clos::paper_example();
    let mut rng = SplitMix64::new(0x5ade);
    for trial in 0..30 {
        let mut ctl = Controller::new(topo, ControllerConfig::paper_default(4));
        let size = rng.range_inclusive(4, 16);
        let members: BTreeSet<HostId> = (0..size)
            .map(|_| HostId(rng.below(topo.num_hosts() as u64) as u32))
            .collect();
        let gid = GroupId(trial);
        ctl.create_group(
            gid,
            Vni(2),
            Ipv4Addr::new(225, 0, 1, trial as u8 + 1),
            members.iter().map(|&h| (h, MemberRole::Both)),
        );
        let sender = *members.iter().next().expect("non-empty");
        let mut fabric = Fabric::new(topo, SwitchConfig::default());
        let got = deliver(&ctl, &mut fabric, gid, sender);
        for &m in &members {
            if m != sender {
                assert!(got.contains(&m), "trial {trial}: member {m} missed");
            }
        }
    }
}

/// Every sender of a group reaches every other member, using its own
/// sender-specific header over the shared downstream rules.
#[test]
fn all_senders_reach_all_members() {
    let topo = Clos::paper_example();
    let members = [
        HostId(3),
        HostId(11),
        HostId(20),
        HostId(35),
        HostId(50),
        HostId(63),
    ];
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let gid = GroupId(1);
    ctl.create_group(
        gid,
        Vni(3),
        Ipv4Addr::new(225, 0, 2, 1),
        members.iter().map(|&h| (h, MemberRole::Both)),
    );
    for &sender in &members {
        let mut fabric = Fabric::new(topo, SwitchConfig::default());
        let got = deliver(&ctl, &mut fabric, gid, sender);
        let expected: BTreeSet<HostId> = members.iter().copied().filter(|&h| h != sender).collect();
        assert_eq!(got, expected, "sender {sender}");
    }
}

/// Non-members never receive a decodable tenant frame, even when spurious
/// packets reach their hosts: the hypervisor discards unsubscribed groups
/// (address-space isolation at the edge).
#[test]
fn non_members_discard_spurious_traffic() {
    let topo = Clos::paper_example();
    let members = [HostId(0), HostId(17), HostId(42)];
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(12));
    let gid = GroupId(1);
    ctl.create_group(
        gid,
        Vni(4),
        Ipv4Addr::new(225, 0, 3, 1),
        members.iter().map(|&h| (h, MemberRole::Both)),
    );
    let layout = *ctl.layout();
    let state = ctl.group(gid).expect("group");
    let header = ctl.header_for(gid, HostId(0)).expect("header");
    let mut hv = HypervisorSwitch::new(HostId(0));
    hv.install_flow(
        Vni(4),
        state.tenant_addr,
        SenderFlow::new(state.outer_addr, Vni(4), &header, &layout, vec![]),
    );
    let pkt = hv
        .send(Vni(4), state.tenant_addr, b"secret", &layout)
        .remove(0);
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (host, bytes) in fabric.inject(HostId(0), pkt) {
        if !members.contains(&host) {
            // An unsubscribed hypervisor must drop it.
            let mut rx = HypervisorSwitch::new(host);
            assert!(
                rx.receive(&bytes, &layout).is_empty(),
                "{host} leaked a frame"
            );
            assert_eq!(rx.stats.discarded, 1);
        }
    }
}

/// Two tenants can use the same tenant-side group address without
/// interference (address-space isolation): the outer addresses differ.
#[test]
fn tenants_share_group_addresses_without_collision() {
    let topo = Clos::paper_example();
    let shared_addr = Ipv4Addr::new(225, 1, 1, 1);
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    ctl.create_group(
        GroupId(1),
        Vni(100),
        shared_addr,
        [
            (HostId(0), MemberRole::Both),
            (HostId(9), MemberRole::Receiver),
        ],
    );
    ctl.create_group(
        GroupId(2),
        Vni(200),
        shared_addr,
        [
            (HostId(0), MemberRole::Both),
            (HostId(42), MemberRole::Receiver),
        ],
    );
    let a = ctl.group(GroupId(1)).expect("group 1");
    let b = ctl.group(GroupId(2)).expect("group 2");
    assert_eq!(a.tenant_addr, b.tenant_addr);
    assert_ne!(a.outer_addr, b.outer_addr, "provider addresses must differ");
    // Tenant 100's packet reaches host 9, not host 42 (and vice versa).
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    let got_a = deliver(&ctl, &mut fabric, GroupId(1), HostId(0));
    assert_eq!(got_a, BTreeSet::from([HostId(9)]));
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    let got_b = deliver(&ctl, &mut fabric, GroupId(2), HostId(0));
    assert_eq!(got_b, BTreeSet::from([HostId(42)]));
}

/// Membership churn keeps delivery correct: after every join/leave, a fresh
/// transmission matches the current receiver set exactly.
#[test]
fn delivery_tracks_membership_changes() {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let gid = GroupId(1);
    let sender = HostId(0);
    ctl.create_group(
        gid,
        Vni(9),
        Ipv4Addr::new(225, 0, 4, 1),
        [
            (sender, MemberRole::Both),
            (HostId(8), MemberRole::Receiver),
        ],
    );
    let mut current: BTreeSet<HostId> = BTreeSet::from([HostId(8)]);
    let steps: &[(u32, bool)] = &[
        (42, true),
        (57, true),
        (8, false),
        (33, true),
        (57, false),
        (12, true),
    ];
    for &(host, join) in steps {
        let h = HostId(host);
        if join {
            ctl.join(gid, h, MemberRole::Receiver);
            current.insert(h);
        } else {
            ctl.leave(gid, h, MemberRole::Receiver);
            current.remove(&h);
        }
        let mut fabric = Fabric::new(topo, SwitchConfig::default());
        let got = deliver(&ctl, &mut fabric, gid, sender);
        assert_eq!(
            got,
            current,
            "after {} of {h}",
            if join { "join" } else { "leave" }
        );
    }
}
