//! The parallel encode pipeline must be invisible in the results: a sweep
//! (Figures 4/5) run at any thread count produces bit-identical rows —
//! including float summaries, whose accumulation order is pinned by the
//! sequential phase-2 fold — and identical s-rule occupancy, even when
//! limited group-table capacity forces the admission-failure re-encode
//! path.

use std::sync::Mutex;

use elmo::sim::{sweep, SweepConfig};
use elmo::topology::Clos;
use elmo::workloads::{GroupSizeDist, WorkloadConfig};

/// The obs registry is process-global; tests in this binary that reset or
/// snapshot it must not interleave with other sweeps recording into it.
static REGISTRY: Mutex<()> = Mutex::new(());

fn base_config() -> SweepConfig {
    let topo = Clos::scaled_fabric(4, 8, 8); // 256 hosts
    let workload = WorkloadConfig {
        tenants: 25,
        total_groups: 300,
        host_vm_cap: 20,
        placement_p: 1,
        min_group_size: 5,
        dist: GroupSizeDist::Wve,
        seed: 0xD17E,
    };
    let mut cfg = SweepConfig::paper(topo, workload);
    cfg.r_values = vec![0, 6, 12];
    cfg
}

#[test]
fn sweep_is_identical_at_any_thread_count() {
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = base_config();
    cfg.threads = 1;
    let reference = sweep::run(&cfg);
    for threads in [2, 8] {
        cfg.threads = threads;
        let result = sweep::run(&cfg);
        assert_eq!(result.rows, reference.rows, "threads={threads}");
        assert_eq!(result.li_leaf, reference.li_leaf);
        assert_eq!(result.li_spine, reference.li_spine);
        assert_eq!(result.li_core, reference.li_core);
    }
}

#[test]
fn sweep_with_limited_srule_capacity_is_identical() {
    // Tight header budget + tiny Fmax: many groups lose the optimistic
    // admission race and take the phase-2 re-encode path, which must still
    // reproduce the serial order exactly.
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = base_config();
    cfg.header_budget = 24;
    cfg.leaf_fmax = 8;
    cfg.spine_fmax = 8;
    cfg.threads = 1;
    let reference = sweep::run(&cfg);
    assert!(
        reference.rows.iter().any(|r| r.defaulted > 0),
        "config must actually exhaust s-rule capacity"
    );
    for threads in [2, 8] {
        cfg.threads = threads;
        let result = sweep::run(&cfg);
        assert_eq!(result.rows, reference.rows, "threads={threads}");
    }
}

#[test]
fn metrics_neither_perturb_results_nor_depend_on_thread_count() {
    // Two guarantees at once: (1) running with the metrics registry enabled
    // produces the same sweep rows as ever, and (2) the deterministic view
    // of the metrics themselves — everything except the wall-clock `span.*`
    // timings — is bit-identical at any thread count, because counters only
    // ever accumulate commutative increments from the parallel phase.
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = base_config();
    elmo::obs::set_enabled(true);
    let mut reference: Option<(Vec<elmo::sim::SweepRow>, elmo::obs::Snapshot)> = None;
    for threads in [1, 2, 8] {
        elmo::obs::reset();
        cfg.threads = threads;
        let result = sweep::run(&cfg);
        let snap = elmo::obs::snapshot().deterministic();
        assert!(
            snap.counter("sim.sweep.groups_encoded").unwrap_or(0) > 0,
            "metrics were actually recorded"
        );
        assert!(
            snap.histograms.keys().all(|k| !k.starts_with("span.")),
            "deterministic view must exclude wall-clock spans"
        );
        match &reference {
            None => reference = Some((result.rows, snap)),
            Some((rows, ref_snap)) => {
                assert_eq!(&result.rows, rows, "rows diverged at threads={threads}");
                assert_eq!(
                    ref_snap.to_json(),
                    snap.to_json(),
                    "metrics diverged at threads={threads}"
                );
            }
        }
    }
}
