//! The parallel encode pipeline must be invisible in the results: a sweep
//! (Figures 4/5) run at any thread count produces bit-identical rows —
//! including float summaries, whose accumulation order is pinned by the
//! sequential phase-2 fold — and identical s-rule occupancy, even when
//! limited group-table capacity forces the admission-failure re-encode
//! path. The encode cache must be equally invisible: cached and uncached
//! sweeps agree bit-for-bit, and the hit/miss accounting itself is a pure
//! function of the workload, not of the thread count.

use std::sync::Mutex;

use elmo::core::EncodeCache;
use elmo::sim::{sweep, SweepConfig};
use elmo::topology::Clos;
use elmo::workloads::{GroupSizeDist, WorkloadConfig};

/// The obs registry is process-global; tests in this binary that reset or
/// snapshot it must not interleave with other sweeps recording into it.
static REGISTRY: Mutex<()> = Mutex::new(());

fn base_config() -> SweepConfig {
    let topo = Clos::scaled_fabric(4, 8, 8); // 256 hosts
    let workload = WorkloadConfig {
        tenants: 25,
        total_groups: 300,
        host_vm_cap: 20,
        placement_p: 1,
        min_group_size: 5,
        dist: GroupSizeDist::Wve,
        seed: 0xD17E,
    };
    let mut cfg = SweepConfig::paper(topo, workload);
    cfg.r_values = vec![0, 6, 12];
    cfg
}

#[test]
fn sweep_is_identical_at_any_thread_count() {
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = base_config();
    cfg.threads = 1;
    let reference = sweep::run(&cfg);
    for threads in [2, 8] {
        cfg.threads = threads;
        let result = sweep::run(&cfg);
        assert_eq!(result.rows, reference.rows, "threads={threads}");
        assert_eq!(result.li_leaf, reference.li_leaf);
        assert_eq!(result.li_spine, reference.li_spine);
        assert_eq!(result.li_core, reference.li_core);
    }
}

#[test]
fn sweep_with_limited_srule_capacity_is_identical() {
    // Tight header budget + tiny Fmax: many groups lose the optimistic
    // admission race and take the phase-2 re-encode path, which must still
    // reproduce the serial order exactly.
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = base_config();
    cfg.header_budget = 24;
    cfg.leaf_fmax = 8;
    cfg.spine_fmax = 8;
    cfg.threads = 1;
    let reference = sweep::run(&cfg);
    assert!(
        reference.rows.iter().any(|r| r.defaulted > 0),
        "config must actually exhaust s-rule capacity"
    );
    for threads in [2, 8] {
        cfg.threads = threads;
        let result = sweep::run(&cfg);
        assert_eq!(result.rows, reference.rows, "threads={threads}");
    }
}

/// A configuration the encode cache actually engages with: dispersed
/// placement (`P = 1`) on a wide fabric plus a large minimum group size
/// makes most groups span well over [`elmo::core::sig::CACHE_MIN_ROWS`]
/// leaves, and the reduced header budget presses those leaf layers so they
/// take the cacheable greedy path instead of the (uncached) fast path.
fn cache_stress_config() -> SweepConfig {
    let topo = Clos::scaled_fabric(4, 12, 8); // 48 leaves, 384 hosts
    let workload = WorkloadConfig {
        tenants: 12,
        total_groups: 160,
        host_vm_cap: 20,
        placement_p: 2,
        min_group_size: 64,
        dist: GroupSizeDist::Uniform,
        seed: 0x5EED,
    };
    let mut cfg = SweepConfig::paper(topo, workload);
    cfg.r_values = vec![0, 6, 12];
    cfg.header_budget = 48;
    cfg
}

/// Remove the cache accounting counters so cached and uncached metric
/// snapshots can be compared: they are the only metrics allowed to differ
/// between the two modes.
fn scrub_cache_counters(snap: &elmo::obs::Snapshot) -> elmo::obs::Snapshot {
    let mut s = snap.clone();
    s.counters.remove("encode.cache_hit");
    s.counters.remove("encode.cache_miss");
    s
}

#[test]
fn cached_sweep_is_bit_identical_to_uncached_at_any_thread_count() {
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    elmo::obs::set_enabled(true);
    let mut cfg = cache_stress_config();

    // Uncached single-thread run: the ground truth for rows and metrics.
    cfg.cache = false;
    cfg.threads = 1;
    elmo::obs::reset();
    let reference = sweep::run(&cfg);
    let ref_snap = elmo::obs::snapshot().deterministic();
    assert_eq!(
        ref_snap.counter("encode.cache_miss").unwrap_or(0),
        0,
        "uncached run must not touch the cache counters"
    );

    cfg.cache = true;
    let mut cached_snap: Option<elmo::obs::Snapshot> = None;
    for threads in [1, 2, 8] {
        cfg.threads = threads;
        elmo::obs::reset();
        let result = sweep::run(&cfg);
        let snap = elmo::obs::snapshot().deterministic();

        // Rows (floats included) are bit-identical to the uncached run.
        assert_eq!(result.rows, reference.rows, "threads={threads}");
        assert_eq!(result.li_leaf, reference.li_leaf);
        assert_eq!(result.li_spine, reference.li_spine);
        assert_eq!(result.li_core, reference.li_core);

        // The cache actually engaged: misses on first sight, hits when the
        // same placement signature recurs across groups and R-values.
        let misses = snap.counter("encode.cache_miss").unwrap_or(0);
        let hits = snap.counter("encode.cache_hit").unwrap_or(0);
        assert!(misses > 0, "threads={threads}: cache never engaged");
        assert!(hits > 0, "threads={threads}: no signature ever recurred");

        // Every non-cache metric matches the uncached run exactly.
        assert_eq!(
            scrub_cache_counters(&snap).to_json(),
            scrub_cache_counters(&ref_snap).to_json(),
            "threads={threads}: cached metrics diverged from uncached"
        );

        // And the hit/miss accounting itself is thread-count-independent,
        // because outcomes are absorbed sequentially in group order.
        match &cached_snap {
            None => cached_snap = Some(snap),
            Some(first) => assert_eq!(
                first.to_json(),
                snap.to_json(),
                "cache accounting diverged at threads={threads}"
            ),
        }
    }

    // A warm rerun against a persistent cache: every cacheable layer hits,
    // none misses, and the rows still match the uncached ground truth.
    let mut cache = EncodeCache::new();
    cfg.threads = 1;
    let cold = sweep::run_with_cache(&cfg, &mut cache);
    assert_eq!(cold.rows, reference.rows);
    elmo::obs::reset();
    let warm = sweep::run_with_cache(&cfg, &mut cache);
    let warm_snap = elmo::obs::snapshot();
    assert_eq!(warm.rows, reference.rows, "warm cache perturbed the rows");
    assert_eq!(
        warm_snap.counter("encode.cache_miss").unwrap_or(0),
        0,
        "a warmed cache must hit on every cacheable layer"
    );
    assert!(warm_snap.counter("encode.cache_hit").unwrap_or(0) > 0);
}

#[test]
fn metrics_neither_perturb_results_nor_depend_on_thread_count() {
    // Two guarantees at once: (1) running with the metrics registry enabled
    // produces the same sweep rows as ever, and (2) the deterministic view
    // of the metrics themselves — everything except the wall-clock `span.*`
    // timings — is bit-identical at any thread count, because counters only
    // ever accumulate commutative increments from the parallel phase.
    let _guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = base_config();
    elmo::obs::set_enabled(true);
    let mut reference: Option<(Vec<elmo::sim::SweepRow>, elmo::obs::Snapshot)> = None;
    for threads in [1, 2, 8] {
        elmo::obs::reset();
        cfg.threads = threads;
        let result = sweep::run(&cfg);
        let snap = elmo::obs::snapshot().deterministic();
        assert!(
            snap.counter("sim.sweep.groups_encoded").unwrap_or(0) > 0,
            "metrics were actually recorded"
        );
        assert!(
            snap.histograms.keys().all(|k| !k.starts_with("span.")),
            "deterministic view must exclude wall-clock spans"
        );
        match &reference {
            None => reference = Some((result.rows, snap)),
            Some((rows, ref_snap)) => {
                assert_eq!(&result.rows, rows, "rows diverged at threads={threads}");
                assert_eq!(
                    ref_snap.to_json(),
                    snap.to_json(),
                    "metrics diverged at threads={threads}"
                );
            }
        }
    }
}
