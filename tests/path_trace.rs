//! INT-style multicast path tracing (paper §7, monitoring): per-hop records
//! collected for a multicast transmission must describe a consistent tree —
//! correct layer ordering, shrinking headers, and exactly the deliveries the
//! group encodes.

use std::net::Ipv4Addr;

use elmo::controller::{Controller, ControllerConfig, GroupId, MemberRole};
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, HostId, LeafId, PodId, SwitchRef};

fn traced_transmission() -> (Vec<(HostId, Vec<u8>)>, Vec<elmo::dataplane::HopRecord>) {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let gid = GroupId(1);
    let group = Ipv4Addr::new(225, 8, 8, 8);
    ctl.create_group(
        gid,
        Vni(8),
        group,
        [
            (HostId(0), MemberRole::Both),
            (HostId(1), MemberRole::Receiver),
            (HostId(42), MemberRole::Receiver),
            (HostId(57), MemberRole::Receiver),
        ],
    );
    let state = ctl.group(gid).expect("group");
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .unwrap();
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .unwrap();
    }
    let header = ctl.header_for(gid, HostId(0)).expect("header");
    let mut hv = HypervisorSwitch::new(HostId(0));
    hv.install_flow(
        Vni(8),
        group,
        SenderFlow::new(state.outer_addr, Vni(8), &header, ctl.layout(), vec![]),
    );
    let pkt = hv.send(Vni(8), group, b"trace me", ctl.layout()).remove(0);
    fabric.inject_traced(HostId(0), pkt)
}

#[test]
fn trace_covers_every_layer_once_per_copy() {
    let (deliveries, trace) = traced_transmission();
    assert_eq!(deliveries.len(), 3);
    // The sender's leaf appears exactly once as the first hop.
    assert!(matches!(trace[0].switch, SwitchRef::Leaf(LeafId(0))));
    assert_eq!(trace[0].ingress_port, 0);
    // Exactly one core hop (single logical core traversal).
    let cores = trace
        .iter()
        .filter(|h| matches!(h.switch, SwitchRef::Core(_)))
        .count();
    assert_eq!(cores, 1);
    // Spine hops: one upstream (pod 0) + one per remote member pod (2, 3).
    let spine_pods: Vec<u32> = trace
        .iter()
        .filter_map(|h| match h.switch {
            SwitchRef::Spine(s) => Some(s.0 / 2),
            _ => None,
        })
        .collect();
    assert_eq!(spine_pods.len(), 3, "{spine_pods:?}");
    // Every record has at least one egress (nothing dropped on this tree).
    assert!(trace.iter().all(|h| !h.egress_ports.is_empty()));
}

#[test]
fn trace_shows_header_shrinking() {
    let (_, trace) = traced_transmission();
    // The first hop (sender leaf) sees the biggest packet; downstream leaf
    // hops see strictly smaller ones (upstream + spine sections popped).
    let first = trace[0].bytes_in;
    for h in &trace[1..] {
        assert!(h.bytes_in <= first, "{} > {}", h.bytes_in, first);
        if matches!(h.switch, SwitchRef::Leaf(_)) {
            assert!(h.bytes_in < first, "downstream leaf saw an unshrunk packet");
        }
    }
}

#[test]
fn untraced_injection_records_nothing_extra() {
    // inject() after inject_traced() must not keep accumulating records.
    let (_, trace) = traced_transmission();
    assert!(!trace.is_empty());
    // A second plain transmission works and trace state is reset.
    let (deliveries2, trace2) = traced_transmission();
    assert_eq!(deliveries2.len(), 3);
    assert_eq!(trace.len(), trace2.len(), "traces are reproducible");
}

/// The same controller-driven fixture as [`traced_transmission`], but in
/// flight-packet form for the causal copy-tree trace.
fn tree_fixture() -> (Clos, Fabric, elmo::dataplane::FlightPacket) {
    let topo = Clos::paper_example();
    let mut ctl = Controller::new(topo, ControllerConfig::paper_default(0));
    let gid = GroupId(1);
    let group = Ipv4Addr::new(225, 8, 8, 8);
    ctl.create_group(
        gid,
        Vni(8),
        group,
        [
            (HostId(0), MemberRole::Both),
            (HostId(1), MemberRole::Receiver),
            (HostId(42), MemberRole::Receiver),
            (HostId(57), MemberRole::Receiver),
        ],
    );
    let state = ctl.group(gid).expect("group");
    let mut fabric = Fabric::new(topo, SwitchConfig::default());
    for (leaf, bm) in &state.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(state.outer_addr, bm.clone())
            .unwrap();
    }
    for (pod, bm) in &state.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), state.outer_addr, bm.clone())
            .unwrap();
    }
    let header = ctl.header_for(gid, HostId(0)).expect("header");
    let mut hv = HypervisorSwitch::new(HostId(0));
    hv.install_flow(
        Vni(8),
        group,
        SenderFlow::new(state.outer_addr, Vni(8), &header, ctl.layout(), vec![]),
    );
    let payload: std::sync::Arc<[u8]> = std::sync::Arc::from(&b"trace me"[..]);
    let pkt = hv.send_flight(Vni(8), group, &payload).remove(0);
    (topo, fabric, pkt)
}

#[test]
fn copy_tree_leaves_equal_delivery_hosts() {
    let (topo, mut fabric, pkt) = tree_fixture();
    fabric.start_tree_trace();
    assert!(fabric.tree_tracing());
    let deliveries = fabric.inject_flight(HostId(0), pkt);
    let events = fabric.take_tree_trace();
    assert!(!fabric.tree_tracing(), "take_tree_trace ends the session");

    let tree =
        elmo::obs::CopyTree::build(0, &events, |n| elmo::dataplane::trace_node_label(&topo, n));
    // The tree's host leaves are exactly the replay's delivery set.
    let mut delivered: Vec<u32> = deliveries.iter().map(|(h, _)| h.0).collect();
    delivered.sort_unstable();
    delivered.dedup();
    assert_eq!(tree.leaf_hosts(), delivered);
    // The root is the sender's leaf, with no parent.
    let root = &tree.nodes[0];
    assert!(root.parent.is_none());
    assert_eq!(root.label, "leaf:0");
    // Every non-root node's parent id exists in the tree.
    let ids: std::collections::BTreeSet<u64> = tree.nodes.iter().map(|n| n.id).collect();
    assert_eq!(ids.len(), tree.nodes.len(), "node ids are unique");
    for n in &tree.nodes {
        if let Some(p) = n.parent {
            assert!(ids.contains(&p), "dangling parent {p} on {n:?}");
        }
    }
}

#[test]
fn tracing_off_is_a_no_op() {
    // Untraced runs record nothing and deliver bit-identically to traced
    // ones — the zero-sampling overhead guard.
    let (_, mut traced_fab, pkt) = tree_fixture();
    let (_, mut plain_fab, pkt2) = tree_fixture();
    traced_fab.start_tree_trace();
    let traced = traced_fab.inject_flight(HostId(0), pkt);
    let plain = plain_fab.inject_flight(HostId(0), pkt2);
    assert_eq!(traced, plain, "tracing changed deliveries");
    assert!(!plain_fab.tree_tracing());
    assert!(
        plain_fab.take_tree_trace().is_empty(),
        "untraced run recorded events"
    );
}
