//! Byte-identity golden tests for the zero-copy replay fast path.
//!
//! `Fabric::inject` (flight form: parse once, forward structs, materialize
//! at delivery) must be observationally indistinguishable from
//! `Fabric::inject_reference` (the pre-change encode-per-hop path, kept
//! in-tree as the reference): identical `(HostId, Vec<u8>)` deliveries in
//! identical order, identical per-switch `SwitchStats`, and identical
//! per-tier link-byte counters — on the paper's Figure 3 end-to-end
//! scenario as well as s-rule and default-p-rule encodings.

use std::net::Ipv4Addr;
use std::sync::Arc;

use elmo::core::{encode_group, header_for_sender, EncoderConfig, HeaderLayout};
use elmo::dataplane::{Fabric, HypervisorSwitch, SenderFlow, SwitchConfig};
use elmo::net::vxlan::Vni;
use elmo::topology::{Clos, GroupTree, HostId, LeafId, PodId, UpstreamCover};

const OUTER: Ipv4Addr = Ipv4Addr::new(239, 1, 1, 1);
const GROUP: Ipv4Addr = Ipv4Addr::new(225, 0, 0, 1);
const MEMBERS: [HostId; 6] = [
    HostId(0),
    HostId(1),
    HostId(42),
    HostId(48),
    HostId(49),
    HostId(57),
];

/// One encoded scenario, ready to build identical fabrics from.
struct Scenario {
    topo: Clos,
    layout: HeaderLayout,
    enc: elmo::core::GroupEncoding,
    tree: GroupTree,
}

/// The paper's Figure 3 configuration: pod P3 lands on the default p-rule,
/// everything else on exact p-rules.
fn figure3_scenario() -> Scenario {
    let topo = Clos::paper_example();
    let layout = HeaderLayout::for_clos(&topo);
    let tree = GroupTree::new(&topo, MEMBERS);
    let cfg = EncoderConfig::with_budget(&layout, 325, 0);
    let mut sa = |_p| false;
    let mut la = |_l| false;
    let enc = encode_group(&topo, &tree, &cfg, &mut sa, &mut la);
    Scenario {
        topo,
        layout,
        enc,
        tree,
    }
}

/// A tight-budget encoding with group-table capacity available: some
/// switches get s-rules instead of p-rules.
fn srule_scenario() -> Scenario {
    let topo = Clos::paper_example();
    let layout = HeaderLayout::for_clos(&topo);
    let tree = GroupTree::new(&topo, MEMBERS);
    let cfg = EncoderConfig {
        r: 0,
        k_max: 2,
        h_spine_max: 2,
        h_leaf_max: 2,
        budget_bytes: 325,
        mode: elmo::core::RedundancyMode::Sum,
    };
    let mut sa = |_p| true;
    let mut la = |_l| true;
    let enc = encode_group(&topo, &tree, &cfg, &mut sa, &mut la);
    assert!(
        !enc.d_spine.s_rules.is_empty() || !enc.d_leaf.s_rules.is_empty(),
        "scenario must exercise s-rules"
    );
    Scenario {
        topo,
        layout,
        enc,
        tree,
    }
}

/// Same tight budget with no s-rule capacity: overflow switches fall to the
/// default p-rule and over-deliver.
fn default_prule_scenario() -> Scenario {
    let topo = Clos::paper_example();
    let layout = HeaderLayout::for_clos(&topo);
    let tree = GroupTree::new(&topo, MEMBERS);
    let cfg = EncoderConfig {
        r: 0,
        k_max: 2,
        h_spine_max: 2,
        h_leaf_max: 2,
        budget_bytes: 325,
        mode: elmo::core::RedundancyMode::Sum,
    };
    let mut sa = |_p| false;
    let mut la = |_l| false;
    let enc = encode_group(&topo, &tree, &cfg, &mut sa, &mut la);
    assert!(
        enc.d_leaf.default_rule.is_some() || enc.d_spine.default_rule.is_some(),
        "scenario must exercise the default p-rule"
    );
    Scenario {
        topo,
        layout,
        enc,
        tree,
    }
}

fn build_fabric(s: &Scenario) -> Fabric {
    let mut fabric = Fabric::new(s.topo, SwitchConfig::default());
    for (leaf, bm) in &s.enc.d_leaf.s_rules {
        fabric
            .leaf_mut(LeafId(*leaf))
            .install_srule(OUTER, bm.clone())
            .expect("leaf capacity");
    }
    for (pod, bm) in &s.enc.d_spine.s_rules {
        fabric
            .install_pod_srule(PodId(*pod), OUTER, bm.clone())
            .expect("spine capacity");
    }
    fabric
}

fn sender_packets(s: &Scenario, sender: HostId, count: usize) -> Vec<Vec<u8>> {
    let header = header_for_sender(
        &s.topo,
        &s.layout,
        &s.tree,
        &s.enc,
        sender,
        &UpstreamCover::multipath(),
    );
    let mut hv = HypervisorSwitch::new(sender);
    hv.install_flow(
        Vni(1),
        GROUP,
        SenderFlow::new(OUTER, Vni(1), &header, &s.layout, vec![]),
    );
    (0..count)
        .map(|i| {
            let payload = format!("replay identity payload #{i} from host {sender}");
            hv.send(Vni(1), GROUP, payload.as_bytes(), &s.layout)
                .remove(0)
        })
        .collect()
}

/// Assert every observable of two fabrics matches: per-tier link bytes and
/// each individual switch's counters.
fn assert_fabrics_identical(a: &Fabric, b: &Fabric, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: FabricStats diverged");
    let topo = *a.topo();
    for l in topo.leaves() {
        assert_eq!(
            a.leaf(l).stats,
            b.leaf(l).stats,
            "{what}: leaf {l:?} stats diverged"
        );
    }
    for sp in topo.spines() {
        assert_eq!(
            a.spine(sp).stats,
            b.spine(sp).stats,
            "{what}: spine {sp:?} stats diverged"
        );
    }
    for c in topo.cores() {
        assert_eq!(
            a.core(c).stats,
            b.core(c).stats,
            "{what}: core {c:?} stats diverged"
        );
    }
}

/// Drive the same packets through the fast path and the reference path,
/// asserting byte-identical deliveries and identical counters.
fn assert_paths_identical(s: &Scenario, what: &str) {
    let mut fast = build_fabric(s);
    let mut reference = build_fabric(s);
    for &sender in &MEMBERS {
        for pkt in sender_packets(s, sender, 3) {
            let d_fast = fast.inject(sender, pkt.clone());
            let d_ref = reference.inject_reference(sender, pkt);
            assert_eq!(d_fast, d_ref, "{what}: deliveries diverged");
            assert!(!d_fast.is_empty(), "{what}: scenario delivered nothing");
        }
    }
    assert_fabrics_identical(&fast, &reference, what);
}

#[test]
fn figure3_fast_path_is_byte_identical_to_reference() {
    assert_paths_identical(&figure3_scenario(), "figure3");
}

#[test]
fn srule_fast_path_is_byte_identical_to_reference() {
    assert_paths_identical(&srule_scenario(), "srule");
}

#[test]
fn default_prule_fast_path_is_byte_identical_to_reference() {
    assert_paths_identical(&default_prule_scenario(), "default-prule");
}

#[test]
fn unicast_fast_path_is_byte_identical_to_reference() {
    let topo = Clos::paper_example();
    let layout = HeaderLayout::for_clos(&topo);
    let mut fast = Fabric::new(topo, SwitchConfig::default());
    let mut reference = Fabric::new(topo, SwitchConfig::default());
    let mut hv_a = HypervisorSwitch::new(HostId(0));
    let mut hv_b = HypervisorSwitch::new(HostId(0));
    for target in [HostId(1), HostId(13), HostId(57)] {
        let pa = hv_a
            .send_unicast_to(&[target], Vni(3), b"uni", &layout)
            .remove(0);
        let pb = hv_b
            .send_unicast_to(&[target], Vni(3), b"uni", &layout)
            .remove(0);
        assert_eq!(pa, pb);
        let d_fast = fast.inject(HostId(0), pa);
        let d_ref = reference.inject_reference(HostId(0), pb);
        assert_eq!(d_fast, d_ref);
        assert_eq!(d_fast[0].0, target);
    }
    assert_fabrics_identical(&fast, &reference, "unicast");
}

#[test]
fn inject_batch_matches_sequential_injects() {
    let s = figure3_scenario();
    let mut one_by_one = build_fabric(&s);
    let mut batched = build_fabric(&s);
    let mut batch = Vec::new();
    let mut expected = Vec::new();
    for &sender in &MEMBERS[..3] {
        for pkt in sender_packets(&s, sender, 2) {
            expected.extend(one_by_one.inject(sender, pkt.clone()));
            batch.push((sender, pkt));
        }
    }
    let got = batched.inject_batch(batch);
    assert_eq!(got, expected);
    assert_fabrics_identical(&one_by_one, &batched, "batch");
}

#[test]
fn inject_flight_matches_byte_injection() {
    let s = figure3_scenario();
    let sender = HostId(0);
    let header = header_for_sender(
        &s.topo,
        &s.layout,
        &s.tree,
        &s.enc,
        sender,
        &UpstreamCover::multipath(),
    );
    // Two hypervisors with identical state: one sends bytes, one flights.
    let mut hv_bytes = HypervisorSwitch::new(sender);
    let mut hv_flight = HypervisorSwitch::new(sender);
    for hv in [&mut hv_bytes, &mut hv_flight] {
        hv.install_flow(
            Vni(1),
            GROUP,
            SenderFlow::new(OUTER, Vni(1), &header, &s.layout, vec![]),
        );
    }
    let mut fast = build_fabric(&s);
    let mut flight_fab = build_fabric(&s);
    let payload: Arc<[u8]> = Arc::from(&b"flight payload"[..]);
    for _ in 0..4 {
        let pkt = hv_bytes.send(Vni(1), GROUP, &payload, &s.layout).remove(0);
        let flight = hv_flight.send_flight(Vni(1), GROUP, &payload).remove(0);
        assert_eq!(flight.to_bytes(&s.layout), pkt, "send_flight wire bytes");
        let d_bytes = fast.inject(sender, pkt);
        let d_flight = flight_fab.inject_flight(sender, flight);
        assert_eq!(d_bytes, d_flight);
    }
    assert_fabrics_identical(&fast, &flight_fab, "flight");
}

#[test]
fn replay_is_deterministic_across_runs() {
    let run = || {
        let s = figure3_scenario();
        let mut fabric = build_fabric(&s);
        let mut out = Vec::new();
        for &sender in &MEMBERS {
            for pkt in sender_packets(&s, sender, 2) {
                out.extend(fabric.inject(sender, pkt));
            }
        }
        (out, fabric.stats)
    };
    let (d1, s1) = run();
    let (d2, s2) = run();
    assert_eq!(d1, d2, "deliveries must be bit-identical across runs");
    assert_eq!(s1, s2, "link counters must be identical across runs");
}

#[test]
fn capture_is_identical_and_restartable() {
    let s = figure3_scenario();
    let mut fast = build_fabric(&s);
    let mut reference = build_fabric(&s);
    let pkts = sender_packets(&s, HostId(0), 2);

    // Session 1: both paths capture the same wire copies in the same order.
    fast.start_capture(1024);
    reference.start_capture(1024);
    fast.inject(HostId(0), pkts[0].clone());
    reference.inject_reference(HostId(0), pkts[0].clone());
    let cap_fast = fast.take_capture();
    let cap_ref = reference.take_capture();
    assert!(!cap_fast.is_empty());
    assert_eq!(cap_fast, cap_ref, "captured copies diverged");

    // Session 2: take_capture reset state, so a fresh capture works and is
    // independent of the first.
    fast.start_capture(1024);
    fast.inject(HostId(0), pkts[1].clone());
    let cap2 = fast.take_capture();
    assert_eq!(cap2.len(), cap_fast.len(), "second session captures anew");
    assert_ne!(cap2, cap_fast, "entropy differs, so copies differ");

    // After take_capture, capturing is off: nothing is recorded.
    fast.inject(HostId(0), pkts[0].clone());
    assert!(fast.take_capture().is_empty());

    // The capture limit is honored per session.
    fast.start_capture(3);
    fast.inject(HostId(0), pkts[0].clone());
    assert_eq!(fast.take_capture().len(), 3);
}

#[test]
fn failed_switch_behaves_identically_on_both_paths() {
    let s = figure3_scenario();
    let mut fast = build_fabric(&s);
    let mut reference = build_fabric(&s);
    for f in [&mut fast, &mut reference] {
        f.fail_core(elmo::topology::CoreId(0));
        f.fail_core(elmo::topology::CoreId(1));
    }
    for pkt in sender_packets(&s, HostId(0), 3) {
        let d_fast = fast.inject(HostId(0), pkt.clone());
        let d_ref = reference.inject_reference(HostId(0), pkt);
        assert_eq!(d_fast, d_ref, "deliveries diverged under failure");
    }
    assert_fabrics_identical(&fast, &reference, "failed-core");
}

/// Sort a delivery vector into the sharded engine's canonical per-packet
/// order. `inject_batch` returns deliveries grouped by injection already,
/// so tagging each packet's slice and sorting within it yields exactly
/// what `inject_batch_sharded` promises.
fn canonicalize_serial(fabric: &mut Fabric, batch: &[(HostId, Vec<u8>)]) -> Vec<(HostId, Vec<u8>)> {
    let mut out = Vec::new();
    for (sender, pkt) in batch {
        let mut per_pkt = fabric.inject(*sender, pkt.clone());
        per_pkt.sort_unstable_by(|a, b| ((a.0).0, &a.1).cmp(&((b.0).0, &b.1)));
        out.extend(per_pkt);
    }
    out
}

/// Drive one scenario's batch through `inject_batch` (serial flight path)
/// and `inject_batch_sharded` at several shard counts: the delivery set
/// (canonical order) and every merged counter must match exactly.
fn assert_sharded_identical(s: &Scenario, what: &str) {
    let mut batch = Vec::new();
    for &sender in &MEMBERS {
        for pkt in sender_packets(s, sender, 3) {
            batch.push((sender, pkt));
        }
    }
    let mut serial = build_fabric(s);
    let expected = canonicalize_serial(&mut serial, &batch);
    assert!(!expected.is_empty(), "{what}: scenario delivered nothing");
    for shards in [1usize, 2, 4, 8] {
        let mut sharded = build_fabric(s);
        let got = sharded.inject_batch_sharded(batch.clone(), shards);
        assert_eq!(
            got, expected,
            "{what}: sharded({shards}) delivery set diverged"
        );
        assert_fabrics_identical(&serial, &sharded, &format!("{what}: sharded({shards})"));
    }
}

#[test]
fn figure3_sharded_replay_matches_serial_at_all_shard_counts() {
    assert_sharded_identical(&figure3_scenario(), "figure3");
}

#[test]
fn srule_sharded_replay_matches_serial_at_all_shard_counts() {
    assert_sharded_identical(&srule_scenario(), "srule");
}

#[test]
fn default_prule_sharded_replay_matches_serial_at_all_shard_counts() {
    assert_sharded_identical(&default_prule_scenario(), "default-prule");
}

#[test]
fn sharded_flights_match_sharded_bytes() {
    let s = figure3_scenario();
    let sender = HostId(0);
    let header = header_for_sender(
        &s.topo,
        &s.layout,
        &s.tree,
        &s.enc,
        sender,
        &UpstreamCover::multipath(),
    );
    let mut hv_bytes = HypervisorSwitch::new(sender);
    let mut hv_flight = HypervisorSwitch::new(sender);
    for hv in [&mut hv_bytes, &mut hv_flight] {
        hv.install_flow(
            Vni(1),
            GROUP,
            SenderFlow::new(OUTER, Vni(1), &header, &s.layout, vec![]),
        );
    }
    let mut byte_batch = Vec::new();
    let mut flight_batch = Vec::new();
    for i in 0..6 {
        let payload: Arc<[u8]> = Arc::from(format!("sharded flight payload #{i}").into_bytes());
        byte_batch.push((
            sender,
            hv_bytes.send(Vni(1), GROUP, &payload, &s.layout).remove(0),
        ));
        flight_batch.push((
            sender,
            hv_flight.send_flight(Vni(1), GROUP, &payload).remove(0),
        ));
    }
    let mut from_bytes = build_fabric(&s);
    let mut from_flights = build_fabric(&s);
    let d_bytes = from_bytes.inject_batch_sharded(byte_batch, 4);
    let d_flights = from_flights.inject_flights_sharded(&flight_batch, 4);
    assert_eq!(d_bytes, d_flights, "flight/byte sharded paths diverged");
    assert!(!d_bytes.is_empty());
    assert_fabrics_identical(&from_bytes, &from_flights, "sharded flight vs bytes");
}

#[test]
fn sharded_replay_respects_failed_switches() {
    let s = figure3_scenario();
    let mut batch = Vec::new();
    for &sender in &MEMBERS {
        for pkt in sender_packets(&s, sender, 2) {
            batch.push((sender, pkt));
        }
    }
    let fail = |f: &mut Fabric| {
        f.fail_core(elmo::topology::CoreId(0));
        f.fail_core(elmo::topology::CoreId(1));
    };
    let mut serial = build_fabric(&s);
    fail(&mut serial);
    let expected = canonicalize_serial(&mut serial, &batch);
    for shards in [2usize, 4] {
        let mut sharded = build_fabric(&s);
        fail(&mut sharded);
        let got = sharded.inject_batch_sharded(batch.clone(), shards);
        assert_eq!(got, expected, "sharded({shards}) under failure diverged");
        assert_fabrics_identical(&serial, &sharded, "sharded failed-core");
    }
}

#[test]
fn sharded_replay_is_deterministic_across_runs_and_shard_counts() {
    let run = |shards: usize| {
        let s = figure3_scenario();
        let mut fabric = build_fabric(&s);
        let mut batch = Vec::new();
        for &sender in &MEMBERS {
            for pkt in sender_packets(&s, sender, 2) {
                batch.push((sender, pkt));
            }
        }
        let out = fabric.inject_batch_sharded(batch, shards);
        (out, fabric.stats)
    };
    let (d2a, s2a) = run(2);
    let (d2b, s2b) = run(2);
    assert_eq!(d2a, d2b, "same shard count must be bit-identical");
    assert_eq!(s2a, s2b);
    let (d4, s4) = run(4);
    assert_eq!(d2a, d4, "shard count must not change the delivery vector");
    assert_eq!(s2a, s4, "shard count must not change link counters");
}

/// Flight-packet form of [`sender_packets`], for the tracing tests.
fn sender_flights(
    s: &Scenario,
    sender: HostId,
    count: usize,
) -> Vec<elmo::dataplane::FlightPacket> {
    let header = header_for_sender(
        &s.topo,
        &s.layout,
        &s.tree,
        &s.enc,
        sender,
        &UpstreamCover::multipath(),
    );
    let mut hv = HypervisorSwitch::new(sender);
    hv.install_flow(
        Vni(1),
        GROUP,
        SenderFlow::new(OUTER, Vni(1), &header, &s.layout, vec![]),
    );
    (0..count)
        .map(|i| {
            let payload: Arc<[u8]> =
                Arc::from(format!("traced replay payload #{i} from host {sender}").into_bytes());
            hv.send_flight(Vni(1), GROUP, &payload).remove(0)
        })
        .collect()
}

/// Copy-tree tracing must be a pure observer: trace-enabled sharded
/// replay keeps the delivery set bit-identical to an untraced run at
/// every shard count, and the recorded event set (canonically sorted by
/// `take_tree_trace`) is the same at 1/2/4/8 shards as on the serial
/// path — so the reconstructed copy-tree topology is shard-invariant.
fn assert_traced_identical(s: &Scenario, what: &str) {
    let mut batch = Vec::new();
    for &sender in &MEMBERS {
        for flight in sender_flights(s, sender, 2) {
            batch.push((sender, flight));
        }
    }
    // Untraced canonical deliveries: the baseline tracing must not change.
    let mut plain = build_fabric(s);
    let expected = plain.inject_flights_sharded(&batch, 1);
    assert!(!expected.is_empty(), "{what}: scenario delivered nothing");

    // Serial traced run: packet index = injection order, so its events
    // are directly comparable with the sharded engine's batch indices.
    let mut serial = build_fabric(s);
    serial.start_tree_trace();
    for (sender, flight) in &batch {
        serial.inject_flight(*sender, flight.clone());
    }
    let serial_events = serial.take_tree_trace();
    assert!(!serial_events.is_empty(), "{what}: trace recorded nothing");

    for shards in [1usize, 2, 4, 8] {
        let mut traced = build_fabric(s);
        traced.start_tree_trace();
        let got = traced.inject_flights_sharded(&batch, shards);
        assert_eq!(
            got, expected,
            "{what}: tracing changed deliveries at {shards} shards"
        );
        let events = traced.take_tree_trace();
        assert_eq!(
            events, serial_events,
            "{what}: trace events diverged at {shards} shards"
        );
        assert_fabrics_identical(&plain, &traced, &format!("{what}: traced({shards})"));
        // The per-packet trees those events reconstruct are identical
        // too; spot-check the first packet's tree at every shard count.
        let tree = elmo::obs::CopyTree::build(0, &events, |n| format!("{n}"));
        let serial_tree = elmo::obs::CopyTree::build(0, &serial_events, |n| format!("{n}"));
        assert_eq!(
            tree, serial_tree,
            "{what}: copy tree diverged at {shards} shards"
        );
    }
}

/// The full batched ≡ scalar ≡ reference triangle: the run-grouped SoA
/// engine (`replay_flights_sharded` through one *reused* `DeliveryBatch`,
/// materialized via the zero-copy `for_each` the bench times) must match
/// the encode-per-hop reference path byte for byte at 1/2/4/8 shards,
/// with tracing enabled as well as disabled. The serial flight path is
/// the middle leg — its equality with both ends pins all three.
fn assert_batched_matches_reference(s: &Scenario, what: &str) {
    let mut wire_batch = Vec::new();
    let mut flights = Vec::new();
    for &sender in &MEMBERS {
        for pkt in sender_packets(s, sender, 3) {
            // Parse the identical wire bytes the reference path consumes,
            // so the two streams cannot drift apart by construction.
            flights.push((
                sender,
                elmo::dataplane::FlightPacket::parse(&pkt, &s.layout).expect("packet parses"),
            ));
            wire_batch.push((sender, pkt));
        }
    }
    // Reference leg: encode-per-hop, canonicalized per packet.
    let mut reference = build_fabric(s);
    let mut expected = Vec::new();
    for (sender, pkt) in &wire_batch {
        let mut per_pkt = reference.inject_reference(*sender, pkt.clone());
        per_pkt.sort_unstable_by(|a, b| ((a.0).0, &a.1).cmp(&((b.0).0, &b.1)));
        expected.extend(per_pkt);
    }
    assert!(!expected.is_empty(), "{what}: scenario delivered nothing");
    // Scalar leg.
    let mut serial = build_fabric(s);
    let scalar = canonicalize_serial(&mut serial, &wire_batch);
    assert_eq!(scalar, expected, "{what}: scalar != reference");
    assert_fabrics_identical(&reference, &serial, &format!("{what}: scalar"));
    // Batched leg: one DeliveryBatch reused across every shard count and
    // tracing mode, so arena recycling is part of what's being proven.
    let mut out = elmo::dataplane::DeliveryBatch::new();
    for tracing in [false, true] {
        for shards in [1usize, 2, 4, 8] {
            let mut batched = build_fabric(s);
            if tracing {
                batched.start_tree_trace();
            }
            batched.replay_flights_sharded(&flights, shards, &mut out);
            let mut got = Vec::with_capacity(expected.len());
            out.for_each(|h, b| got.push((h, b.to_vec())));
            assert_eq!(
                got, expected,
                "{what}: batched({shards}, tracing={tracing}) != reference"
            );
            assert_fabrics_identical(
                &reference,
                &batched,
                &format!("{what}: batched({shards}, tracing={tracing})"),
            );
            if tracing {
                assert!(
                    !batched.take_tree_trace().is_empty(),
                    "{what}: traced batched({shards}) recorded nothing"
                );
            }
        }
    }
}

#[test]
fn figure3_batched_engine_matches_reference() {
    assert_batched_matches_reference(&figure3_scenario(), "figure3");
}

#[test]
fn srule_batched_engine_matches_reference() {
    assert_batched_matches_reference(&srule_scenario(), "srule");
}

#[test]
fn default_prule_batched_engine_matches_reference() {
    assert_batched_matches_reference(&default_prule_scenario(), "default-prule");
}

#[test]
fn figure3_traced_replay_is_bit_identical_at_all_shard_counts() {
    assert_traced_identical(&figure3_scenario(), "figure3");
}

#[test]
fn srule_traced_replay_is_bit_identical_at_all_shard_counts() {
    assert_traced_identical(&srule_scenario(), "srule");
}

#[test]
fn default_prule_traced_replay_is_bit_identical_at_all_shard_counts() {
    assert_traced_identical(&default_prule_scenario(), "default-prule");
}

#[test]
fn garbage_bytes_count_parse_drop_on_ingress_leaf() {
    let topo = Clos::paper_example();
    let mut fast = Fabric::new(topo, SwitchConfig::default());
    let mut reference = Fabric::new(topo, SwitchConfig::default());
    assert!(fast.inject(HostId(0), vec![0u8; 24]).is_empty());
    assert!(reference
        .inject_reference(HostId(0), vec![0u8; 24])
        .is_empty());
    assert_eq!(fast.leaf(LeafId(0)).stats.dropped_parse, 1);
    assert_fabrics_identical(&fast, &reference, "garbage");
}
