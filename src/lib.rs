//! # Elmo — source-routed multicast for public clouds
//!
//! A from-scratch Rust reproduction of *Elmo: Source Routed Multicast for
//! Public Clouds* (SIGCOMM 2019). This facade crate re-exports the public
//! API of every subsystem:
//!
//! * [`core`] — the paper's contribution: p-rule/s-rule encoding of
//!   multicast trees (bitmaps, bit-level header format, Algorithm 1).
//! * [`topology`] — multi-rooted Clos fabrics, logical topology, failures.
//! * [`net`] — the substrate packet stack (Ethernet/IPv4/UDP/VXLAN).
//! * [`dataplane`] — PISA-style network switches and hypervisor switches.
//! * [`controller`] — the logically-centralized controller.
//! * [`workloads`] — tenants, placement, group-size distributions, churn.
//! * [`sim`] — the evaluation harness regenerating every paper table/figure.
//! * [`apps`] — pub-sub and telemetry applications over the fabric.
//! * [`obs`] — zero-dependency metrics, spans, and structured events.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use elmo_apps as apps;
pub use elmo_controller as controller;
pub use elmo_core as core;
pub use elmo_dataplane as dataplane;
pub use elmo_net as net;
pub use elmo_obs as obs;
pub use elmo_sim as sim;
pub use elmo_topology as topology;
pub use elmo_workloads as workloads;
